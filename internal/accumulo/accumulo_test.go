package accumulo

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"graphulo/internal/iterator"
	"graphulo/internal/skv"
)

func newTestCluster(t *testing.T) *Connector {
	t.Helper()
	return NewMiniCluster(Config{TabletServers: 3, MemLimit: 64, WireBatch: 32}).Connector()
}

func mustCreate(t *testing.T, c *Connector, name string, splits ...string) {
	t.Helper()
	if err := c.TableOperations().CreateWithSplits(name, splits); err != nil {
		t.Fatal(err)
	}
}

func writeCells(t *testing.T, c *Connector, table string, cells map[string]float64) {
	t.Helper()
	w, err := c.CreateBatchWriter(table, BatchWriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var row, cq string
		fmt.Sscanf(k, "%s %s", &row, &cq)
		if err := w.PutFloat(row, "", cq, cells[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanFloats(t *testing.T, c *Connector, table string) map[string]float64 {
	t.Helper()
	s, err := c.CreateScanner(table)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, e := range entries {
		v, _ := skv.DecodeFloat(e.V)
		out[e.K.Row+" "+e.K.ColQ] = v
	}
	return out
}

func TestCreateDeleteListExists(t *testing.T) {
	c := newTestCluster(t)
	ops := c.TableOperations()
	mustCreate(t, c, "A")
	mustCreate(t, c, "B")
	if !ops.Exists("A") || ops.Exists("Z") {
		t.Fatalf("Exists wrong")
	}
	if got := ops.List(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("List = %v", got)
	}
	if err := ops.Create("A"); err == nil {
		t.Fatalf("duplicate create should fail")
	}
	if err := ops.Delete("A"); err != nil {
		t.Fatal(err)
	}
	if ops.Exists("A") {
		t.Fatalf("delete did not remove table")
	}
	if err := ops.Delete("A"); err == nil {
		t.Fatalf("double delete should fail")
	}
}

func TestWriteScanRoundTrip(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	writeCells(t, c, "T", map[string]float64{
		"r1 c1": 1, "r1 c2": 2, "r2 c1": 3,
	})
	got := scanFloats(t, c, "T")
	if len(got) != 3 || got["r1 c1"] != 1 || got["r2 c1"] != 3 {
		t.Fatalf("scan = %v", got)
	}
}

func TestScanIsSorted(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T", "m")
	w, _ := c.CreateBatchWriter("T", BatchWriterConfig{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		w.PutFloat(fmt.Sprintf("r%03d", rng.Intn(200)), "", fmt.Sprintf("c%d", rng.Intn(5)), 1)
	}
	w.Close()
	s, _ := c.CreateScanner("T")
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(entries); i++ {
		if skv.Compare(entries[i].K, entries[i+1].K) > 0 {
			t.Fatalf("scan unsorted at %d", i)
		}
	}
}

func TestVersioningDefaultKeepsNewest(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	w, _ := c.CreateBatchWriter("T", BatchWriterConfig{})
	w.PutFloat("r", "", "c", 1)
	w.Flush()
	w.PutFloat("r", "", "c", 2)
	w.Close()
	got := scanFloats(t, c, "T")
	if len(got) != 1 || got["r c"] != 2 {
		t.Fatalf("versioning should keep only newest: %v", got)
	}
}

func TestSummingCombinerAcrossWritesAndCompactions(t *testing.T) {
	c := newTestCluster(t)
	ops := c.TableOperations()
	mustCreate(t, c, "T")
	// Replace default versioning semantics with summing at every scope.
	if err := ops.RemoveIterator("T", "versioning"); err != nil {
		t.Fatal(err)
	}
	if err := ops.AttachIterator("T", iterator.Setting{Name: "sum", Priority: 10}); err != nil {
		t.Fatal(err)
	}
	w, _ := c.CreateBatchWriter("T", BatchWriterConfig{})
	for i := 0; i < 10; i++ {
		w.PutFloat("r", "", "c", 1)
		w.Flush()
	}
	w.Close()
	got := scanFloats(t, c, "T")
	if got["r c"] != 10 {
		t.Fatalf("sum at scan = %v, want 10", got["r c"])
	}
	// The sum must survive a major compaction (applied at majc scope).
	if err := ops.Compact("T"); err != nil {
		t.Fatal(err)
	}
	got = scanFloats(t, c, "T")
	if got["r c"] != 10 {
		t.Fatalf("sum after compaction = %v, want 10", got["r c"])
	}
	if n, _ := ops.EntryEstimate("T"); n != 1 {
		t.Fatalf("compaction should collapse to 1 entry, estimate %d", n)
	}
}

func TestRangeScan(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T", "g", "p")
	writeCells(t, c, "T", map[string]float64{
		"alpha x": 1, "gamma x": 2, "omega x": 3, "zeta x": 4,
	})
	s, _ := c.CreateScanner("T")
	s.SetRange(skv.RowRange("g", "p"))
	entries, _ := s.Entries()
	if len(entries) != 2 || entries[0].K.Row != "gamma" || entries[1].K.Row != "omega" {
		t.Fatalf("range scan wrong: %v", entries)
	}
}

func TestSplitsRouteAndScanAcrossTablets(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T", "h", "q")
	cells := map[string]float64{}
	for i := 0; i < 100; i++ {
		cells[fmt.Sprintf("%c%02d x", 'a'+i%26, i)] = float64(i)
	}
	writeCells(t, c, "T", cells)
	got := scanFloats(t, c, "T")
	if len(got) != len(cells) {
		t.Fatalf("lost cells across tablets: %d vs %d", len(got), len(cells))
	}
}

func TestAddSplitsAfterData(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	cells := map[string]float64{}
	for i := 0; i < 60; i++ {
		cells[fmt.Sprintf("r%02d x", i)] = float64(i)
	}
	writeCells(t, c, "T", cells)
	ops := c.TableOperations()
	if err := ops.AddSplits("T", []string{"r20", "r40"}); err != nil {
		t.Fatal(err)
	}
	sp, _ := ops.Splits("T")
	if len(sp) != 2 || sp[0] != "r20" || sp[1] != "r40" {
		t.Fatalf("splits = %v", sp)
	}
	got := scanFloats(t, c, "T")
	if len(got) != len(cells) {
		t.Fatalf("split lost data: %d vs %d", len(got), len(cells))
	}
	// Adding an existing split is a no-op.
	if err := ops.AddSplits("T", []string{"r20"}); err != nil {
		t.Fatal(err)
	}
}

func TestPerScanIterator(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	writeCells(t, c, "T", map[string]float64{"a x": 2, "b x": 5, "c x": 2})
	s, _ := c.CreateScanner("T")
	s.AddScanIterator(iterator.Setting{Name: "equalsIndicator", Priority: 30,
		Opts: map[string]string{"target": "2"}})
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("per-scan filter wrong: %d entries", len(entries))
	}
}

func TestBatchScannerParallelRanges(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T", "d", "h", "m")
	cells := map[string]float64{}
	for i := 0; i < 200; i++ {
		cells[fmt.Sprintf("%c%03d x", 'a'+i%20, i)] = 1
	}
	writeCells(t, c, "T", cells)
	bs, err := c.CreateBatchScanner("T", 8)
	if err != nil {
		t.Fatal(err)
	}
	bs.SetRanges([]skv.Range{
		skv.RowRange("", "f"), skv.RowRange("f", "k"), skv.RowRange("k", ""),
	})
	entries, err := bs.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cells) {
		t.Fatalf("batch scan lost data: %d vs %d", len(entries), len(cells))
	}
	SortEntries(entries)
	for i := 0; i+1 < len(entries); i++ {
		if skv.Compare(entries[i].K, entries[i+1].K) > 0 {
			t.Fatalf("SortEntries failed")
		}
	}
}

func TestBatchWriterRetriesTransientFailures(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	w, _ := c.CreateBatchWriter("T", BatchWriterConfig{MaxRetries: 5})
	w.PutFloat("r", "", "c", 7)
	c.Cluster().InjectWriteFailures(2)
	if err := w.Flush(); err != nil {
		t.Fatalf("retry should absorb 2 failures: %v", err)
	}
	if got := scanFloats(t, c, "T"); got["r c"] != 7 {
		t.Fatalf("write lost after retries: %v", got)
	}
}

func TestBatchWriterGivesUpAfterMaxRetries(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	w, _ := c.CreateBatchWriter("T", BatchWriterConfig{MaxRetries: 2})
	w.PutFloat("r", "", "c", 7)
	c.Cluster().InjectWriteFailures(100)
	if err := w.Flush(); err == nil {
		t.Fatalf("expected give-up error")
	}
	c.Cluster().InjectWriteFailures(0)
}

func TestAttachIteratorValidation(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	ops := c.TableOperations()
	if err := ops.AttachIterator("T", iterator.Setting{Name: "nosuch", Priority: 9}); err == nil {
		t.Fatalf("unknown iterator must be rejected")
	}
	if err := ops.AttachIterator("T", iterator.Setting{Name: "sum", Priority: 20}); err == nil {
		t.Fatalf("priority collision with versioning(20) must be rejected")
	}
	if err := ops.AttachIterator("T", iterator.Setting{Name: "sum", Priority: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestScannerOnMissingTable(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.CreateScanner("nope"); err == nil {
		t.Fatalf("expected error")
	}
	if _, err := c.CreateBatchWriter("nope", BatchWriterConfig{}); err == nil {
		t.Fatalf("expected error")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "T")
	writeCells(t, c, "T", map[string]float64{"a x": 1, "b y": 2})
	scanFloats(t, c, "T")
	m := &c.Cluster().Metrics
	if m.WireBytes.Load() == 0 || m.RPCs.Load() == 0 ||
		m.EntriesWritten.Load() != 2 || m.EntriesScanned.Load() != 2 {
		t.Fatalf("metrics: wire=%d rpc=%d w=%d s=%d",
			m.WireBytes.Load(), m.RPCs.Load(), m.EntriesWritten.Load(), m.EntriesScanned.Load())
	}
}

// Integration: the full Graphulo server-side multiply machinery through
// table scan configuration (TwoTableIterator + RemoteWriteIterator).
func TestServerSideMultiplyPipeline(t *testing.T) {
	c := newTestCluster(t)
	// AT holds Aᵀ; B holds B; C receives partial products with a sum.
	mustCreate(t, c, "AT")
	mustCreate(t, c, "B")
	mustCreate(t, c, "C")
	ops := c.TableOperations()
	if err := ops.RemoveIterator("C", "versioning"); err != nil {
		t.Fatal(err)
	}
	if err := ops.AttachIterator("C", iterator.Setting{Name: "sum", Priority: 10}); err != nil {
		t.Fatal(err)
	}
	// A = [1 2; 3 4] (rows a0,a1 × inner i0,i1), stored transposed.
	wa, _ := c.CreateBatchWriter("AT", BatchWriterConfig{})
	wa.PutFloat("i0", "", "a0", 1)
	wa.PutFloat("i1", "", "a0", 2)
	wa.PutFloat("i0", "", "a1", 3)
	wa.PutFloat("i1", "", "a1", 4)
	wa.Close()
	// B = [5 6; 7 8] (inner i0,i1 × cols b0,b1).
	wb, _ := c.CreateBatchWriter("B", BatchWriterConfig{})
	wb.PutFloat("i0", "", "b0", 5)
	wb.PutFloat("i0", "", "b1", 6)
	wb.PutFloat("i1", "", "b0", 7)
	wb.PutFloat("i1", "", "b1", 8)
	wb.Close()

	// Scan B with the multiply stack: results flow into C server-side.
	s, _ := c.CreateScanner("B")
	s.AddScanIterator(iterator.Setting{Name: "twoTable", Priority: 30,
		Opts: map[string]string{"tableAT": "AT", "semiring": "plus.times"}})
	s.AddScanIterator(iterator.Setting{Name: "remoteWrite", Priority: 40,
		Opts: map[string]string{"table": "C"}})
	monitors, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(monitors) == 0 {
		t.Fatalf("expected monitoring entries from remoteWrite")
	}
	got := scanFloats(t, c, "C")
	// C = A·B = [1·5+2·7, 1·6+2·8; 3·5+4·7, 3·6+4·8] = [19 22; 43 50].
	want := map[string]float64{"a0 b0": 19, "a0 b1": 22, "a1 b0": 43, "a1 b1": 50}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("C[%s] = %v, want %v (all %v)", k, got[k], v, got)
		}
	}
}

func TestCloneTable(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "Orig", "m")
	ops := c.TableOperations()
	if err := ops.RemoveIterator("Orig", "versioning"); err != nil {
		t.Fatal(err)
	}
	if err := ops.AttachIterator("Orig", iterator.Setting{Name: "sum", Priority: 10}); err != nil {
		t.Fatal(err)
	}
	writeCells(t, c, "Orig", map[string]float64{"a x": 1, "z y": 2})
	if err := ops.Clone("Orig", "Copy"); err != nil {
		t.Fatal(err)
	}
	got := scanFloats(t, c, "Copy")
	if got["a x"] != 1 || got["z y"] != 2 {
		t.Fatalf("clone data wrong: %v", got)
	}
	// The clone keeps the combiner: another write sums.
	w, _ := c.CreateBatchWriter("Copy", BatchWriterConfig{})
	w.PutFloat("a", "", "x", 10)
	w.Close()
	if got := scanFloats(t, c, "Copy"); got["a x"] != 11 {
		t.Fatalf("clone lost combiner config: %v", got)
	}
	// Splits carried over.
	sp, _ := ops.Splits("Copy")
	if len(sp) != 1 || sp[0] != "m" {
		t.Fatalf("clone splits = %v", sp)
	}
	// Original untouched.
	if got := scanFloats(t, c, "Orig"); got["a x"] != 1 {
		t.Fatalf("clone mutated original")
	}
}

func TestDeleteRows(t *testing.T) {
	c := newTestCluster(t)
	mustCreate(t, c, "DR", "g")
	writeCells(t, c, "DR", map[string]float64{
		"a x": 1, "d x": 2, "h x": 3, "p x": 4,
	})
	if err := c.TableOperations().DeleteRows("DR", "c", "k"); err != nil {
		t.Fatal(err)
	}
	got := scanFloats(t, c, "DR")
	if len(got) != 2 || got["a x"] != 1 || got["p x"] != 4 {
		t.Fatalf("delete rows wrong: %v", got)
	}
	if _, ok := got["d x"]; ok {
		t.Fatalf("row in deleted range survived")
	}
}
