package accumulo

// This file implements the streaming scan pipeline: instead of
// materialising a scan's full result as one slice, the cluster hands the
// client an EntryStream cursor fed by per-tablet workers. Each worker
// runs its tablet's iterator stack over a snapshot and round-trips
// results through the wire codec one batch at a time; a bounded pool
// (Config.ScanParallelism) lets workers for several tablets execute
// concurrently while the cursor serves tablets in key order, so the
// stream stays globally sorted and the memory held by a scan is bounded
// by wire batches × parallelism, never by table size. This mirrors the
// paper's execution model: kernels run where the tablets live, in
// parallel across tablet servers, and the client consumes a trickle.

import (
	"runtime"
	"sync"

	"graphulo/internal/iterator"
	"graphulo/internal/skv"
)

// EntryStream is a streaming cursor over one scan's sorted results.
// Next returns entries until the scan is exhausted or fails; Err reports
// the failure after Next returns false; Close releases the tablet
// workers early. A stream is single-consumer: Next, Err, and Close must
// not be called concurrently with each other. A fully drained stream
// needs no Close (its workers have already exited), and an abandoned
// stream is reclaimed at GC, but closing promptly frees worker
// goroutines and their buffered batches.
type EntryStream struct {
	scans []*tabletScan
	idx   int
	cur   []skv.Entry
	pos   int
	err   error

	done      chan struct{}
	closeOnce sync.Once
	metrics   *Metrics
}

// tabletScan carries one tablet worker's output: decoded wire batches,
// then a channel close. err is written before the close when the worker
// failed, so the consumer may read it after the receive fails.
type tabletScan struct {
	batches chan []skv.Entry
	err     error
}

// openStream starts a streaming scan: per overlapping tablet, a worker
// runs the table's scan stack (plus extra per-scan settings) over a
// snapshot and ships results through the wire codec one batch at a
// time. Workers start in tablet order under the ScanParallelism bound;
// the cursor consumes tablets in the same order, so the stream is
// globally sorted while later tablets prefetch concurrently.
func (mc *MiniCluster) openStream(table string, rng skv.Range, extra []iterator.Setting) (*EntryStream, error) {
	meta, err := mc.getTable(table)
	if err != nil {
		return nil, err
	}
	mc.Metrics.ScansStarted.Add(1)
	tablets := meta.tabletsOverlapping(rng)
	s := &EntryStream{
		scans:   make([]*tabletScan, len(tablets)),
		done:    make(chan struct{}),
		metrics: &mc.Metrics,
	}
	for i := range s.scans {
		// Capacity 1: beyond the batch its worker is filling, each tablet
		// holds at most one decoded batch in flight.
		s.scans[i] = &tabletScan{batches: make(chan []skv.Entry, 1)}
	}
	par := mc.cfg.ScanParallelism
	if par < 1 {
		par = 1
	}
	// The dispatcher and workers must not capture s itself, only its
	// channels, so an abandoned stream becomes unreachable and its
	// finalizer can release them.
	done, scans := s.done, s.scans
	go func() {
		sem := make(chan struct{}, par)
		for i, tr := range tablets {
			select {
			case sem <- struct{}{}:
			case <-done:
				// Close the channels of workers that never started so a
				// draining consumer does not wait on them forever.
				for _, ts := range scans[i:] {
					close(ts.batches)
				}
				return
			}
			go func(tr *tabletRef, out *tabletScan) {
				defer func() { <-sem }()
				defer close(out.batches)
				mc.streamTablet(meta, tr, rng, extra, out, done)
			}(tr, scans[i])
		}
	}()
	runtime.SetFinalizer(s, (*EntryStream).Close)
	return s, nil
}

// streamTablet is one tablet worker: it runs the scan stack over a
// tablet snapshot and ships results one wire batch at a time, blocking
// when the consumer falls a batch behind (backpressure) and aborting
// when the stream is closed.
func (mc *MiniCluster) streamTablet(meta *tableMeta, tr *tabletRef, rng skv.Range, extra []iterator.Setting, out *tabletScan, done <-chan struct{}) {
	clipped := rng.Clip(tr.tab.Range())
	if clipped.IsEmpty() {
		return
	}
	mc.Metrics.noteScanStart()
	defer mc.Metrics.ScansInFlight.Add(-1)
	env := &scanEnv{mc: mc}
	defer env.close()
	settings := append(meta.scopeStack(ScanScope), extra...)
	stack, err := iterator.BuildStack(tr.tab.Snapshot(), settings, env)
	if err != nil {
		out.err = err
		return
	}
	if err := stack.Seek(clipped); err != nil {
		out.err = err
		return
	}
	batch := make([]skv.Entry, 0, mc.cfg.WireBatch)
	ship := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case <-done:
			return false
		default:
		}
		wire := skv.EncodeBatch(batch)
		mc.Metrics.WireBytes.Add(int64(len(wire)))
		mc.Metrics.RPCs.Add(1)
		decoded, err := skv.DecodeBatch(wire)
		if err != nil {
			out.err = err
			return false
		}
		mc.Metrics.noteBuffered(mc.Metrics.EntriesBuffered.Add(int64(len(decoded))))
		select {
		case out.batches <- decoded:
			// Only batches the consumer can still receive count as
			// returned to the scan client.
			mc.Metrics.EntriesScanned.Add(int64(len(decoded)))
		case <-done:
			mc.Metrics.EntriesBuffered.Add(-int64(len(decoded)))
			return false
		}
		batch = batch[:0]
		return true
	}
	for stack.HasTop() {
		batch = append(batch, stack.Top())
		if len(batch) >= mc.cfg.WireBatch && !ship() {
			return
		}
		if err := stack.Next(); err != nil {
			out.err = err
			return
		}
	}
	ship()
}

// Next returns the next entry in key order, or ok=false when the stream
// is exhausted, failed (see Err), or closed.
func (s *EntryStream) Next() (skv.Entry, bool) {
	for s.err == nil {
		if s.pos < len(s.cur) {
			e := s.cur[s.pos]
			s.pos++
			return e, true
		}
		s.metrics.EntriesBuffered.Add(-int64(len(s.cur)))
		s.cur, s.pos = nil, 0
		if s.idx >= len(s.scans) {
			break
		}
		ts := s.scans[s.idx]
		batch, ok := <-ts.batches
		if !ok {
			if ts.err != nil {
				s.err = ts.err
				break
			}
			s.idx++
			continue
		}
		s.cur = batch
	}
	return skv.Entry{}, false
}

// Err reports the first scan failure; valid once Next has returned
// false.
func (s *EntryStream) Err() error { return s.err }

// Close releases the stream's tablet workers. It is idempotent and safe
// at any point, including after a full drain.
func (s *EntryStream) Close() {
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		close(s.done)
		// Drain so blocked workers observe the close or complete their
		// final send, and the buffered-entries gauge drops batches that
		// never reached the consumer.
		for _, ts := range s.scans {
			for batch := range ts.batches {
				s.metrics.EntriesBuffered.Add(-int64(len(batch)))
			}
		}
		s.metrics.EntriesBuffered.Add(-int64(len(s.cur)))
		s.cur = nil
	})
}

// Collect drains the stream into a slice and closes it — the
// materialising convenience the streaming callers fall back to.
func (s *EntryStream) Collect() ([]skv.Entry, error) {
	defer s.Close()
	var out []skv.Entry
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		out = append(out, e)
	}
	return out, s.Err()
}

// CollectFloatByRow drains the stream into a row → decoded-float map
// and closes it — the shape of every vector read (degree tables, rank
// vectors, reduce outputs). Entries whose values do not decode as
// floats are skipped; rows with several numeric entries keep the last.
func (s *EntryStream) CollectFloatByRow() (map[string]float64, error) {
	defer s.Close()
	out := map[string]float64{}
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if v, ok := skv.DecodeFloat(e.V); ok {
			out[e.K.Row] = v
		}
	}
	return out, s.Err()
}

// --- server-side iterator environment ---

// scanEnv implements iterator.Env for server-side iterators: scanners
// opened from inside a tablet server still route through the wire codec,
// because in Accumulo a RemoteSourceIterator is an ordinary client of
// the remote tablet server. The env records every remote stream its
// iterators open so the tablet worker can release them when its pass
// completes — a TwoTableIterator abandons the remote side mid-stream
// when the hosted side runs dry.
type scanEnv struct {
	mc     *MiniCluster
	opened []*EntryStream
}

// OpenScanner implements iterator.Env. The returned SKVI is streaming:
// it holds wire batches, not the remote table, and is positioned at the
// first entry of rng (callers may iterate without an initial Seek). The
// underlying stream is always opened end-unbounded — rng's end bound is
// applied at HasTop — so a later forward Seek past rng.End is served by
// the same stream instead of silently running dry.
func (e *scanEnv) OpenScanner(table string, rng skv.Range) (iterator.SKVI, error) {
	it := &streamIter{env: e, table: table}
	if err := it.reopen(rng); err != nil {
		return nil, err
	}
	return it, nil
}

// WriteEntries implements iterator.Env.
func (e *scanEnv) WriteEntries(table string, entries []skv.Entry) error {
	return e.mc.write(table, entries)
}

// close releases every remote stream this env's iterators opened.
func (e *scanEnv) close() {
	for _, s := range e.opened {
		s.Close()
	}
	e.opened = nil
}

// streamIter adapts an EntryStream to the SKVI contract for server-side
// remote reads. Forward seeks — ranges starting at or past the current
// position — are served by skipping within the open stream, so a tablet
// pass issues exactly one remote scan no matter how often the kernel
// re-seeks (Graphulo's streaming RemoteSourceIterator contract). Only a
// seek that demonstrably needs already-consumed entries re-issues the
// remote scan.
type streamIter struct {
	env    *scanEnv
	table  string
	stream *EntryStream
	open   skv.Range // start-only range the stream was opened with
	rng    skv.Range
	cur    skv.Entry
	has    bool
	moved  bool // entries before cur have been consumed since (re)open
}

// reopen issues a fresh remote scan, end-unbounded from rng's start (end
// bounds are applied by HasTop), and positions the iterator at its first
// entry.
func (it *streamIter) reopen(rng skv.Range) error {
	if it.stream != nil {
		it.stream.Close()
	}
	open := skv.Range{Start: rng.Start, HasStart: rng.HasStart}
	s, err := it.env.mc.openStream(it.table, open, nil)
	if err != nil {
		return err
	}
	it.env.opened = append(it.env.opened, s)
	it.stream = s
	it.open = open
	it.rng = rng
	it.moved = false
	it.cur, it.has = s.Next()
	if !it.has {
		return s.Err()
	}
	return nil
}

// Seek implements SKVI.
func (it *streamIter) Seek(rng skv.Range) error {
	// The stream can serve rng in place unless it needs entries the
	// stream cannot produce: entries before the opened start (never
	// fetched), or — once the cursor has moved — entries before the
	// current one (consumed), including the tail of an exhausted stream.
	needEarlier := it.open.HasStart &&
		(!rng.HasStart || skv.Compare(rng.Start, it.open.Start) < 0)
	consumed := it.moved &&
		(!rng.HasStart || !it.has || skv.Compare(rng.Start, it.cur.K) < 0)
	if it.stream == nil || needEarlier || consumed {
		if err := it.reopen(rng); err != nil {
			return err
		}
	}
	it.rng = rng
	for it.has && rng.BeforeStart(it.cur.K) {
		if err := it.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (it *streamIter) advance() error {
	it.moved = true
	it.cur, it.has = it.stream.Next()
	if !it.has {
		return it.stream.Err()
	}
	return nil
}

// HasTop implements SKVI.
func (it *streamIter) HasTop() bool { return it.has && !it.rng.AfterEnd(it.cur.K) }

// Top implements SKVI.
func (it *streamIter) Top() skv.Entry { return it.cur }

// Next implements SKVI.
func (it *streamIter) Next() error { return it.advance() }
