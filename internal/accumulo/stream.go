package accumulo

// This file implements the client half of the streaming scan pipeline:
// instead of materialising a scan's full result as one slice, the
// caller gets an EntryStream cursor fed by per-tablet fetch workers.
// Each worker opens one remote scan on the tablet's endpoint through
// the transport — the server runs the iterator stack where the tablet
// lives and streams back skv-codec batches — and a bounded pool
// (Config.ScanParallelism) lets workers for several tablets execute
// concurrently while the cursor serves tablets in key order. The
// stream stays globally sorted and the memory held by a scan is
// bounded by wire batches × parallelism, never by table size. This
// mirrors the paper's execution model: kernels run where the tablets
// live, in parallel across tablet servers, and the client consumes a
// trickle.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"graphulo/internal/iterator"
	"graphulo/internal/skv"
	"graphulo/internal/telemetry"
	"graphulo/internal/transport"
)

// traceCtx carries a scan's telemetry attribution through the backend:
// the query (or server-side pass) the work belongs to, and the span the
// opened scan should parent under (0 = the query's root). The zero
// value means untraced — every consumer is nil-safe.
type traceCtx struct {
	q      *telemetry.Query
	parent uint64
	// nested marks a scan opened from inside a tablet pass (or a
	// compaction) rather than by a client. Nested scans bypass the
	// shared-scan folder and the pass limit: the outer pass already holds
	// a slot, and letting its server-side reads queue for another one
	// deadlocks the moment passes-in-flight reach the limit.
	nested bool
}

// EntryStream is a streaming cursor over one scan's sorted results.
// Next returns entries until the scan is exhausted or fails; Err reports
// the failure after Next returns false; Close releases the tablet
// workers early. A stream is single-consumer: Next, Err, and Close must
// not be called concurrently with each other. A fully drained stream
// needs no Close (its workers have already exited), and an abandoned
// stream is reclaimed at GC, but closing promptly frees worker
// goroutines and their buffered batches.
type EntryStream struct {
	scans []*tabletScan
	idx   int
	cur   []skv.Entry
	pos   int
	err   error

	done      chan struct{}
	closeOnce sync.Once
	metrics   *Metrics

	// onDone fires once when the stream finishes — exhausted, failed, or
	// closed — ending the client-side scan span. Set (if at all) before
	// the consumer first calls Next.
	onDone   func()
	doneOnce sync.Once
}

// finished fires the stream's completion hook exactly once.
func (s *EntryStream) finished() {
	s.doneOnce.Do(func() {
		if s.onDone != nil {
			s.onDone()
		}
	})
}

// tabletScan carries one tablet worker's output: decoded wire batches,
// then a channel close. err is written before the close when the worker
// failed, so the consumer may read it after the receive fails.
type tabletScan struct {
	batches chan []skv.Entry
	err     error
}

// scanBackend abstracts "the rest of the cluster" for scan pipelines
// and the server-side iterator environment: the MiniCluster implements
// it against its table metadata; the standalone tablet server
// (daemon.go) implements it against the routing topology shipped with
// each scan request. Both route the actual traffic through the
// transport.
type scanBackend interface {
	openStream(table string, ranges []skv.Range, families []string, extra []iterator.Setting, tc traceCtx) (*EntryStream, error)
	writeEntries(table string, entries []skv.Entry, q *telemetry.Query) error
	// metrics returns the backend's metrics sink, so server-side
	// iterator counters (range pruning, pre-aggregation folds) land in
	// the right process's counters.
	metrics() *Metrics
}

// startStream builds the cursor and launches per-tablet fetch workers
// in tablet order under the parallelism bound; the cursor consumes
// tablets in the same order, so the stream is globally sorted while
// later tablets prefetch concurrently.
func startStream(metrics *Metrics, par, n int, fetch func(i int, out *tabletScan, done <-chan struct{})) *EntryStream {
	s := &EntryStream{
		scans:   make([]*tabletScan, n),
		done:    make(chan struct{}),
		metrics: metrics,
	}
	for i := range s.scans {
		// Capacity 1: beyond the batch its worker is relaying, each tablet
		// holds at most one decoded batch in flight.
		s.scans[i] = &tabletScan{batches: make(chan []skv.Entry, 1)}
	}
	if par < 1 {
		par = 1
	}
	// The dispatcher and workers must not capture s itself, only its
	// channels, so an abandoned stream becomes unreachable and its
	// finalizer can release them.
	done, scans := s.done, s.scans
	go func() {
		sem := make(chan struct{}, par)
		for i := 0; i < n; i++ {
			select {
			case sem <- struct{}{}:
			case <-done:
				// Close the channels of workers that never started so a
				// draining consumer does not wait on them forever.
				for _, ts := range scans[i:] {
					close(ts.batches)
				}
				return
			}
			go func(i int) {
				defer func() { <-sem }()
				defer close(scans[i].batches)
				fetch(i, scans[i], done)
			}(i)
		}
	}()
	runtime.SetFinalizer(s, (*EntryStream).Close)
	return s
}

// openStream starts a streaming scan over one or more ranges: per
// tablet overlapping any range, a fetch worker opens a remote scan on
// the tablet's endpoint carrying the fully merged stack (table scan
// scope + per-scan extras) and the per-tablet clip of every range, and
// relays the streamed batches to the cursor. Tablets no range touches
// are pruned without a scan pass (SpRef push-down), counted in
// Metrics.TabletsPrunedByRange. An empty range list means the full
// table. A non-empty families set rides every per-tablet request so the
// serving tablets scope their snapshots to the matching locality
// groups.
func (mc *MiniCluster) openStream(table string, ranges []skv.Range, families []string, extra []iterator.Setting, tc traceCtx) (*EntryStream, error) {
	meta, err := mc.getTable(table)
	if err != nil {
		return nil, err
	}
	mc.Metrics.ScansStarted.Add(1)
	tc.q.Add(telemetry.ScansStarted, 1)
	ranges, empty := normalizeRanges(ranges)
	if empty {
		// Every requested range is empty: a scan of nothing.
		return startStream(&mc.Metrics, 1, 0, nil), nil
	}
	tablets, pruned := meta.tabletsOverlappingRanges(ranges)
	mc.Metrics.TabletsPrunedByRange.Add(int64(pruned))
	tc.q.Add(telemetry.TabletsPrunedByRange, int64(pruned))
	settings := append(meta.scopeStack(ScanScope), extra...)
	// The routing topology is identical for every tablet of the scan;
	// encode it once and splice the bytes into each request.
	topoRaw := appendTopology(nil, mc.scanTopology())
	q := tc.q
	span := q.StartSpan(tc.parent, "scan "+table)
	// Trailer folding: the pass's counters and spans always land in the
	// query; they reach the cluster-global Metrics only when the serving
	// process is external — MiniCluster-launched servers already share
	// mc.Metrics, so folding would double count.
	external := mc.external()
	onTrailer := func(t *telemetry.Trailer) error {
		q.FoldTrailer(t)
		if external {
			foldTrailerMetrics(&mc.Metrics, t)
			mc.tel.ScanPass.Fold(t.ScanPass)
		}
		// Budgets are enforced where the counters land: the trailer is how
		// a server-side kernel's scan and write volume reaches the query,
		// so it is also where that volume is charged. (Entries relayed to
		// the client are charged separately, at delivery.)
		if err := q.ChargeScanEntries(t.Counts.Get(telemetry.EntriesScanned)); err != nil {
			return err
		}
		return q.ChargeWriteBytes(t.Counts.Get(telemetry.WriteWireBytes))
	}
	s := startStream(&mc.Metrics, mc.cfg.ScanParallelism, len(tablets),
		func(i int, out *tabletScan, done <-chan struct{}) {
			tr := tablets[i]
			clipped := clipRanges(ranges, tr.start, tr.end)
			if len(clipped) == 0 {
				return
			}
			reqFor := func(rs []skv.Range) []byte {
				return encodeScanReq(scanReq{
					table: table, start: tr.start, end: tr.end,
					ranges: rs, settings: settings,
					batch:   mc.cfg.WireBatch,
					traceID: uint64(q.Trace()), spanID: span.ID(),
					tenant:   q.Tenant(),
					families: families,
					topoRaw:  topoRaw,
				})
			}
			if mc.folds == nil || tc.nested {
				// No pass limit configured — or a nested scan issued from
				// inside a pass that already holds a slot: dispatch
				// immediately, the pre-scheduler behaviour.
				relayScan(mc.tr, &mc.Metrics, q, tr.endpoint, reqFor(clipped), out, done, onTrailer)
				return
			}
			// Pass-limited dispatch. Join the fold group for this tablet
			// before queuing: if a compatible scan is already waiting for
			// its slot, this one rides its physical pass instead of
			// queuing a second one.
			sub := &foldSub{ranges: clipped, out: out, q: q, done: done, finished: make(chan struct{})}
			g, leader := mc.folds.Join(foldKey(tr.endpoint, table, tr.start, tr.end, settings, mc.cfg.WireBatch, families), sub)
			if !leader {
				mc.Metrics.SharedScanFolds.Add(1)
				q.Add(telemetry.SharedScanFolds, 1)
				// The worker must stay alive until the leader is done with
				// our channels: returning here would close out.batches
				// under the leader's sends.
				<-sub.finished
				return
			}
			release, wait := mc.sched.AcquirePass(q.Tenant())
			defer release()
			if wait > 0 {
				q.Add(telemetry.QueueWaitNanos, int64(wait))
				mc.tel.QueueWait.Observe(wait)
			}
			subs := g.Seal()
			if len(subs) == 1 {
				relayScan(mc.tr, &mc.Metrics, q, tr.endpoint, reqFor(clipped), out, done, onTrailer)
				return
			}
			// One physical pass over the union of every subscriber's
			// ranges, re-clipped per subscriber on delivery.
			var union []skv.Range
			for _, sb := range subs {
				union = append(union, sb.ranges...)
			}
			mc.runFoldedScan(tr.endpoint, reqFor(skv.CoalesceRanges(union)), subs, onTrailer)
		})
	s.onDone = span.End
	return s, nil
}

// foldSub is one scan's subscription to a fold group: the ranges its
// consumer asked for (the leader re-clips deliveries to them), its
// cursor channel, and its query for per-query accounting. finished is
// closed by the leader once it will never touch out again — the
// subscriber's fetch worker must not return (closing out.batches)
// before that.
type foldSub struct {
	ranges   []skv.Range
	out      *tabletScan
	q        *telemetry.Query
	done     <-chan struct{}
	finished chan struct{}
	// dead marks a subscriber the leader dropped (consumer cancelled or
	// budget exhausted); leader-goroutine-local after Seal.
	dead bool
}

// foldKey fingerprints a tablet pass for shared-scan folding: two scans
// fold only when the physical work is identical — same endpoint, table,
// tablet band, merged iterator stack, wire batch size, and column-family
// constraint. Setting opts are serialised in sorted key order so equal
// stacks always collide.
func foldKey(endpoint, table, start, end string, settings []iterator.Setting, batch int, families []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s|%d", endpoint, table, start, end, batch)
	for _, f := range families {
		fmt.Fprintf(&b, "|cf:%s", f)
	}
	for _, s := range settings {
		fmt.Fprintf(&b, "|%s#%d", s.Name, s.Priority)
		keys := make([]string, 0, len(s.Opts))
		for k := range s.Opts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ";%s=%s", k, s.Opts[k])
		}
	}
	return b.String()
}

// clipBatch filters a delivered batch to the entries inside any of the
// subscriber's ranges. The common fold — identical whole-table scans —
// keeps every entry, so the input batch is returned unchanged when
// nothing is clipped.
func clipBatch(batch []skv.Entry, ranges []skv.Range) []skv.Entry {
	keep := batch[:0:0]
	all := true
	for _, e := range batch {
		in := false
		for _, r := range ranges {
			if !r.BeforeStart(e.K) && !r.AfterEnd(e.K) {
				in = true
				break
			}
		}
		if in {
			keep = append(keep, e)
		} else {
			all = false
		}
	}
	if all {
		return batch
	}
	return keep
}

// runFoldedScan executes one physical tablet pass on behalf of every
// folded subscriber. The leader's query pays the pass's wire accounting
// and receives its telemetry trailer; each delivered batch is re-clipped
// to each subscriber's own ranges and counted against that subscriber's
// query (including its scan budget). A subscriber that cancels or
// exhausts its budget drops out without stopping the others; the pass
// stops early only when every subscriber is gone.
func (mc *MiniCluster) runFoldedScan(endpoint string, req []byte, subs []*foldSub, onTrailer func(*telemetry.Trailer) error) {
	leader := subs[0]
	live := len(subs)
	drop := func(sub *foldSub) {
		if !sub.dead {
			sub.dead = true
			live--
			close(sub.finished)
		}
	}
	err := relayScanCore(mc.tr, &mc.Metrics, leader.q, endpoint, req, nil, onTrailer,
		func(batch []skv.Entry) error {
			for _, sub := range subs {
				if sub.dead {
					continue
				}
				clipped := clipBatch(batch, sub.ranges)
				if len(clipped) == 0 {
					// Nothing for this subscriber, but still notice a
					// cancelled consumer so its Close does not wait out
					// the whole pass.
					select {
					case <-sub.done:
						drop(sub)
					default:
					}
					continue
				}
				mc.Metrics.noteBuffered(mc.Metrics.EntriesBuffered.Add(int64(len(clipped))))
				select {
				case sub.out.batches <- clipped:
					mc.Metrics.EntriesScanned.Add(int64(len(clipped)))
					sub.q.Add(telemetry.EntriesScanned, int64(len(clipped)))
					if err := sub.q.ChargeScanEntries(int64(len(clipped))); err != nil {
						sub.out.err = err
						drop(sub)
					}
				case <-sub.done:
					mc.Metrics.EntriesBuffered.Add(-int64(len(clipped)))
					drop(sub)
				}
			}
			if live == 0 {
				return errRelayStop
			}
			return nil
		})
	for _, sub := range subs {
		if !sub.dead {
			if err != nil && sub.out.err == nil {
				sub.out.err = err
			}
			drop(sub)
		}
	}
}

// foldTrailerMetrics adds an external pass's shipped counters into the
// coordinator's cluster-global Metrics — the step that keeps ScanStats
// accurate when tablet servers run in other processes. Counters with no
// global mirror (cache, bloom, compaction kicks) stay query-scoped.
func foldTrailerMetrics(m *Metrics, t *telemetry.Trailer) {
	m.TabletScans.Add(t.Counts.Get(telemetry.TabletScans))
	m.TabletsPrunedByRange.Add(t.Counts.Get(telemetry.TabletsPrunedByRange))
	m.EntriesPrunedByRange.Add(t.Counts.Get(telemetry.EntriesPrunedByRange))
	m.PartialProductsFolded.Add(t.Counts.Get(telemetry.PartialProductsFolded))
	m.WireBytes.Add(t.Counts.Get(telemetry.WireBytes))
	m.RPCs.Add(t.Counts.Get(telemetry.RPCs))
	m.EntriesScanned.Add(t.Counts.Get(telemetry.EntriesScanned))
	m.EntriesWritten.Add(t.Counts.Get(telemetry.EntriesWritten))
	m.ScansStarted.Add(t.Counts.Get(telemetry.ScansStarted))
}

// metrics implements scanBackend.
func (mc *MiniCluster) metrics() *Metrics { return &mc.Metrics }

// normalizeRanges coalesces a scan's requested ranges. No ranges at all
// means the full range; ranges that are all empty mean an empty scan
// (empty=true) — the two must not be conflated.
func normalizeRanges(ranges []skv.Range) (_ []skv.Range, empty bool) {
	if len(ranges) == 0 {
		return []skv.Range{skv.FullRange()}, false
	}
	coalesced := skv.CoalesceRanges(ranges)
	return coalesced, len(coalesced) == 0
}

// clipRanges intersects each (sorted, coalesced) range with a tablet's
// row band, dropping empty intersections.
func clipRanges(ranges []skv.Range, start, end string) []skv.Range {
	band := skv.RowRange(start, end)
	var out []skv.Range
	for _, r := range ranges {
		if c := r.Clip(band); !c.IsEmpty() {
			out = append(out, c)
		}
	}
	return out
}

// relayScan is one per-tablet fetch worker: it opens the remote scan and
// relays decoded batches to the cursor channel with backpressure,
// honouring cancellation from the consumer side (done) and failure from
// the server side (Recv errors). Shared by the MiniCluster client and
// the standalone tablet server's nested scans. Wire traffic is counted
// into both the process Metrics and the query q (nil = untraced); a
// telemetry trailer frame — the stream's final payload — is handed to
// onTrailer (nil = dropped).
func relayScan(tr transport.Transport, metrics *Metrics, q *telemetry.Query, endpoint string, req []byte, out *tabletScan, done <-chan struct{}, onTrailer func(*telemetry.Trailer) error) {
	err := relayScanCore(tr, metrics, q, endpoint, req, done, onTrailer,
		func(batch []skv.Entry) error {
			metrics.noteBuffered(metrics.EntriesBuffered.Add(int64(len(batch))))
			select {
			case out.batches <- batch:
				// Only batches the consumer can still receive count as
				// returned to the scan client — and only counted batches
				// charge the query's scan budget.
				metrics.EntriesScanned.Add(int64(len(batch)))
				q.Add(telemetry.EntriesScanned, int64(len(batch)))
				return q.ChargeScanEntries(int64(len(batch)))
			case <-done:
				metrics.EntriesBuffered.Add(-int64(len(batch)))
				return errRelayStop
			}
		})
	if err != nil {
		out.err = err
	}
}

// errRelayStop tells relayScanCore to stop relaying without recording a
// failure — the consumer side is done with the stream.
var errRelayStop = errors.New("accumulo: relay stopped")

// relayScanCore is the transport half of a fetch worker: it opens the
// remote scan and hands each decoded batch to deliver, which owns
// routing and per-consumer accounting (the plain path sends to one
// cursor channel; the folded path fans out to every subscriber). A
// deliver error stops the relay — errRelayStop silently, anything else
// as the relay's failure. done (nil = never) unblocks a relay stuck in
// Recv when the consumer cancels. Wire traffic is counted into metrics
// and q; the telemetry trailer frame goes to onTrailer (nil = dropped).
func relayScanCore(tr transport.Transport, metrics *Metrics, q *telemetry.Query, endpoint string, req []byte, done <-chan struct{}, onTrailer func(*telemetry.Trailer) error, deliver func([]skv.Entry) error) error {
	conn, err := tr.Dial(endpoint)
	if err != nil {
		return err
	}
	st, err := conn.OpenStream(opScan, req)
	if err != nil {
		return err
	}
	// A worker blocked in Recv cannot watch done itself; a sentinel
	// closes the stream on cancellation, which unblocks Recv.
	fin := make(chan struct{})
	defer close(fin)
	go func() {
		select {
		case <-done:
			st.Close()
		case <-fin:
		}
	}()
	defer st.Close()
	for {
		payload, err := st.Recv()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, transport.ErrClosed) {
			return nil // cancelled by the consumer via done
		}
		if err != nil {
			return err
		}
		metrics.WireBytes.Add(int64(len(payload)))
		q.Add(telemetry.WireBytes, int64(len(payload)))
		if len(payload) == 0 {
			return fmt.Errorf("accumulo: wire corruption: empty scan frame")
		}
		// Every scan frame leads with a kind byte: entry batches make up
		// the stream, a telemetry trailer ends it. Trailer frames are not
		// RPC-counted — they ride the stream the entries already paid for.
		kind, body := payload[0], payload[1:]
		switch kind {
		case frameTrailer:
			t, err := telemetry.DecodeTrailer(body)
			if err != nil {
				return fmt.Errorf("accumulo: wire corruption: %w", err)
			}
			if onTrailer != nil {
				// A trailer-fold failure (budget exhaustion) is the relay's
				// failure: the pass's volume is charged where it is counted.
				if err := onTrailer(&t); err != nil {
					return err
				}
			}
			continue
		case frameEntries:
		default:
			return fmt.Errorf("accumulo: wire corruption: unknown scan frame kind %d", kind)
		}
		metrics.RPCs.Add(1)
		q.Add(telemetry.RPCs, 1)
		batch, err := skv.DecodeBatch(body)
		if err != nil {
			return fmt.Errorf("accumulo: wire corruption: %w", err)
		}
		if err := deliver(batch); err != nil {
			if errors.Is(err, errRelayStop) {
				return nil
			}
			return err
		}
	}
}

// Next returns the next entry in key order, or ok=false when the stream
// is exhausted, failed (see Err), or closed.
func (s *EntryStream) Next() (skv.Entry, bool) {
	for s.err == nil {
		if s.pos < len(s.cur) {
			e := s.cur[s.pos]
			s.pos++
			return e, true
		}
		s.metrics.EntriesBuffered.Add(-int64(len(s.cur)))
		s.cur, s.pos = nil, 0
		if s.idx >= len(s.scans) {
			break
		}
		ts := s.scans[s.idx]
		batch, ok := <-ts.batches
		if !ok {
			if ts.err != nil {
				s.err = ts.err
				break
			}
			s.idx++
			continue
		}
		s.cur = batch
	}
	s.finished()
	return skv.Entry{}, false
}

// Err reports the first scan failure; valid once Next has returned
// false.
func (s *EntryStream) Err() error { return s.err }

// Close releases the stream's tablet workers. It is idempotent and safe
// at any point, including after a full drain.
func (s *EntryStream) Close() {
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		close(s.done)
		// Drain so blocked workers observe the close or complete their
		// final send, and the buffered-entries gauge drops batches that
		// never reached the consumer.
		for _, ts := range s.scans {
			for batch := range ts.batches {
				s.metrics.EntriesBuffered.Add(-int64(len(batch)))
			}
		}
		s.metrics.EntriesBuffered.Add(-int64(len(s.cur)))
		s.cur = nil
		s.finished()
	})
}

// Collect drains the stream into a slice and closes it — the
// materialising convenience the streaming callers fall back to.
func (s *EntryStream) Collect() ([]skv.Entry, error) {
	defer s.Close()
	var out []skv.Entry
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		out = append(out, e)
	}
	return out, s.Err()
}

// CollectFloatByRow drains the stream into a row → decoded-float map
// and closes it — the shape of every vector read (degree tables, rank
// vectors, reduce outputs). Entries whose values do not decode as
// floats are skipped; rows with several numeric entries keep the last.
func (s *EntryStream) CollectFloatByRow() (map[string]float64, error) {
	defer s.Close()
	out := map[string]float64{}
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if v, ok := skv.DecodeFloat(e.V); ok {
			out[e.K.Row] = v
		}
	}
	return out, s.Err()
}

// --- server-side iterator environment ---

// scanEnv implements iterator.Env for server-side iterators: scanners
// opened from inside a tablet server still route through the transport,
// because in Accumulo a RemoteSourceIterator is an ordinary client of
// the remote tablet server. The env records every remote stream its
// iterators open so the tablet pass can release them when it completes —
// a TwoTableIterator abandons the remote side mid-stream when the
// hosted side runs dry.
type scanEnv struct {
	backend scanBackend
	// tc attributes the env's work — nested scans, RemoteWrite flushes,
	// iterator counters — to the tablet pass (or compaction) it serves.
	tc     traceCtx
	opened []*EntryStream
}

// openStream opens a nested scan attributed to this env's pass.
func (e *scanEnv) openStream(table string, ranges []skv.Range, families []string, extra []iterator.Setting) (*EntryStream, error) {
	return e.backend.openStream(table, ranges, families, extra, e.tc)
}

// OpenScanner implements iterator.Env. The returned SKVI is streaming:
// it holds wire batches, not the remote table, and is positioned at the
// first entry of rng (callers may iterate without an initial Seek). The
// underlying stream is opened with rng's bounds pushed down — tablets
// (and, durably, rfiles) outside them are pruned — and a later Seek
// whose range escapes the opened bounds re-issues the remote scan;
// kernels clip their re-seeks to the first range, so a tablet pass
// still costs exactly one remote scan.
func (e *scanEnv) OpenScanner(table string, rng skv.Range) (iterator.SKVI, error) {
	return e.OpenScannerFamilies(table, rng, nil)
}

// OpenScannerFamilies implements iterator.FamilyEnv: the nested scan is
// opened with the column-family constraint pushed down to the remote
// table's locality groups. The request's own family constraint is never
// auto-forwarded here — nested scans read *other* tables (a multiply's
// remote operand, a degree table) whose family bands differ from the
// hosted table's — so each iterator pushes the band it knows applies.
func (e *scanEnv) OpenScannerFamilies(table string, rng skv.Range, families []string) (iterator.SKVI, error) {
	it := &streamIter{env: e, table: table, families: families}
	if err := it.reopen(rng); err != nil {
		return nil, err
	}
	return it, nil
}

// WriteEntries implements iterator.Env. Each flush is timed into the
// pass's write-batch histogram and recorded as a span, so RemoteWrite
// batches leaving a tablet pass are visible in the query's trace.
func (e *scanEnv) WriteEntries(table string, entries []skv.Entry) error {
	span := e.tc.q.StartSpan(e.tc.parent, "flush "+table)
	start := time.Now()
	err := e.backend.writeEntries(table, entries, e.tc.q)
	e.tc.q.ObserveWriteBatch(time.Since(start))
	span.End()
	return err
}

// CountRangePruned implements iterator.Counters: entries a server-side
// range filter dropped.
func (e *scanEnv) CountRangePruned(n int) {
	e.backend.metrics().EntriesPrunedByRange.Add(int64(n))
	e.tc.q.Add(telemetry.EntriesPrunedByRange, int64(n))
}

// CountFolded implements iterator.Counters: partial products absorbed
// by RemoteWrite pre-aggregation.
func (e *scanEnv) CountFolded(n int) {
	e.backend.metrics().PartialProductsFolded.Add(int64(n))
	e.tc.q.Add(telemetry.PartialProductsFolded, int64(n))
}

// close releases every remote stream this env's iterators opened.
func (e *scanEnv) close() {
	for _, s := range e.opened {
		s.Close()
	}
	e.opened = nil
}

// streamIter adapts an EntryStream to the SKVI contract for server-side
// remote reads. Forward seeks within the opened range — starting at or
// past the current position — are served by skipping within the open
// stream, so a tablet pass issues exactly one remote scan no matter how
// often the kernel re-seeks (Graphulo's streaming RemoteSourceIterator
// contract). Only a seek that demonstrably needs entries the stream
// cannot produce — already consumed, before the opened start, or past
// the opened end — re-issues the remote scan. The opened range's end is
// pushed down to the remote side so its tablet and rfile pruning apply;
// kernels (TwoTableIterator) clip their re-seeks to the range they
// opened with, keeping the one-scan-per-pass property.
type streamIter struct {
	env      *scanEnv
	table    string
	families []string // column-family constraint pushed down on every (re)open
	stream   *EntryStream
	open     skv.Range // range the stream was opened with (both bounds pushed)
	rng      skv.Range
	cur      skv.Entry
	has      bool
	moved    bool // entries before cur have been consumed since (re)open
}

// reopen issues a fresh remote scan over rng — both bounds pushed down
// — and positions the iterator at its first entry.
func (it *streamIter) reopen(rng skv.Range) error {
	if it.stream != nil {
		it.stream.Close()
	}
	s, err := it.env.openStream(it.table, []skv.Range{rng}, it.families, nil)
	if err != nil {
		return err
	}
	it.env.opened = append(it.env.opened, s)
	it.stream = s
	it.open = rng
	it.rng = rng
	it.moved = false
	it.cur, it.has = s.Next()
	if !it.has {
		return s.Err()
	}
	return nil
}

// Seek implements SKVI.
func (it *streamIter) Seek(rng skv.Range) error {
	// The stream can serve rng in place unless it needs entries the
	// stream cannot produce: entries before the opened start or past the
	// opened end (never fetched), or — once the cursor has moved —
	// entries before the current one (consumed), including the tail of
	// an exhausted stream.
	needEarlier := it.open.HasStart &&
		(!rng.HasStart || skv.Compare(rng.Start, it.open.Start) < 0)
	needLater := it.open.HasEnd &&
		(!rng.HasEnd || skv.Compare(rng.End, it.open.End) > 0)
	consumed := it.moved &&
		(!rng.HasStart || !it.has || skv.Compare(rng.Start, it.cur.K) < 0)
	if it.stream == nil || needEarlier || needLater || consumed {
		if err := it.reopen(rng); err != nil {
			return err
		}
	}
	it.rng = rng
	for it.has && rng.BeforeStart(it.cur.K) {
		if err := it.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (it *streamIter) advance() error {
	it.moved = true
	it.cur, it.has = it.stream.Next()
	if !it.has {
		return it.stream.Err()
	}
	return nil
}

// HasTop implements SKVI.
func (it *streamIter) HasTop() bool { return it.has && !it.rng.AfterEnd(it.cur.K) }

// Top implements SKVI.
func (it *streamIter) Top() skv.Entry { return it.cur }

// Next implements SKVI.
func (it *streamIter) Next() error { return it.advance() }
