package accumulo

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"graphulo/internal/iterator"
	"graphulo/internal/skv"
)

// Model-based test: drive the cluster with random operation sequences
// (puts, flushes, compactions, splits, range scans) and compare every
// scan against a flat in-memory reference model with summing semantics.
// This is the strongest correctness statement about the storage stack:
// no sequence of structural events (memtable spills, run merges, tablet
// splits) may change scan results.
func TestQuickClusterMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mc := NewMiniCluster(Config{TabletServers: 1 + rng.Intn(3), MemLimit: 8 + rng.Intn(32), WireBatch: 1 + rng.Intn(64)})
		conn := mc.Connector()
		ops := conn.TableOperations()
		if err := ops.Create("M"); err != nil {
			return false
		}
		// Summing semantics to make the model deterministic under
		// versions.
		if err := ops.RemoveIterator("M", "versioning"); err != nil {
			return false
		}
		if err := ops.AttachIterator("M", iterator.Setting{Name: "sum", Priority: 10}); err != nil {
			return false
		}
		w, err := conn.CreateBatchWriter("M", BatchWriterConfig{})
		if err != nil {
			return false
		}
		model := map[[2]string]float64{}

		rows := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		cols := []string{"x", "y", "z"}
		checkScan := func(lo, hi string) bool {
			s, err := conn.CreateScanner("M")
			if err != nil {
				return false
			}
			s.SetRange(skv.RowRange(lo, hi))
			entries, err := s.Entries()
			if err != nil {
				return false
			}
			got := map[[2]string]float64{}
			var prev *skv.Key
			for _, e := range entries {
				if prev != nil && skv.Compare(*prev, e.K) > 0 {
					return false // unsorted
				}
				k := e.K
				prev = &k
				v, ok := skv.DecodeFloat(e.V)
				if !ok {
					return false
				}
				got[[2]string{e.K.Row, e.K.ColQ}] += v
			}
			for k, v := range model {
				inRange := (lo == "" || k[0] >= lo) && (hi == "" || k[0] < hi)
				if inRange {
					if got[k] != v {
						return false
					}
					delete(got, k)
				}
			}
			return len(got) == 0
		}

		for op := 0; op < 120; op++ {
			switch rng.Intn(12) {
			case 0, 1, 2, 3, 4, 5: // put
				r := rows[rng.Intn(len(rows))]
				c := cols[rng.Intn(len(cols))]
				v := float64(1 + rng.Intn(9))
				if err := w.PutFloat(r, "", c, v); err != nil {
					return false
				}
				if err := w.Flush(); err != nil {
					return false
				}
				model[[2]string{r, c}] += v
			case 6:
				if err := ops.Flush("M"); err != nil {
					return false
				}
			case 7:
				if err := ops.Compact("M"); err != nil {
					return false
				}
			case 8:
				split := rows[rng.Intn(len(rows))]
				if err := ops.AddSplits("M", []string{split}); err != nil {
					return false
				}
			default: // range scan check
				lo, hi := "", ""
				if rng.Intn(2) == 0 {
					lo = rows[rng.Intn(len(rows))]
				}
				if rng.Intn(2) == 0 {
					hi = rows[rng.Intn(len(rows))]
				}
				if hi != "" && lo > hi {
					lo, hi = hi, lo
				}
				if !checkScan(lo, hi) {
					return false
				}
			}
		}
		return checkScan("", "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The batch scanner must see exactly the same data as the plain scanner
// regardless of how ranges partition the key space.
func TestQuickBatchScannerCoversPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mc := NewMiniCluster(Config{TabletServers: 2, MemLimit: 16})
		conn := mc.Connector()
		if err := conn.TableOperations().CreateWithSplits("P", []string{"d", "m"}); err != nil {
			return false
		}
		w, _ := conn.CreateBatchWriter("P", BatchWriterConfig{})
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			w.PutFloat(fmt.Sprintf("%c%03d", 'a'+rng.Intn(20), i), "", "q", float64(i))
		}
		w.Close()
		s, _ := conn.CreateScanner("P")
		all, err := s.Entries()
		if err != nil {
			return false
		}
		// Partition at two random rows.
		cut1 := fmt.Sprintf("%c", 'a'+rng.Intn(20))
		cut2 := fmt.Sprintf("%c", 'a'+rng.Intn(20))
		if cut1 > cut2 {
			cut1, cut2 = cut2, cut1
		}
		bs, _ := conn.CreateBatchScanner("P", 4)
		bs.SetRanges([]skv.Range{
			skv.RowRange("", cut1), skv.RowRange(cut1, cut2), skv.RowRange(cut2, ""),
		})
		parts, err := bs.Entries()
		if err != nil {
			return false
		}
		if len(parts) != len(all) {
			return false
		}
		SortEntries(parts)
		for i := range all {
			if skv.Compare(all[i].K, parts[i].K) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
