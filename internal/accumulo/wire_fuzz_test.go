package accumulo

// Fuzz coverage for the request codecs. The decoders face bytes from
// the network, so beyond round-trip fidelity the key property is that
// arbitrary input returns an error instead of panicking or
// over-allocating. Seeds cover every field, including the tenant label
// added after the trace/span ids.

import (
	"reflect"
	"testing"

	"graphulo/internal/iterator"
	"graphulo/internal/skv"
)

func fuzzScanSeed() scanReq {
	return scanReq{
		table: "edges",
		start: "a",
		end:   "m",
		ranges: []skv.Range{
			{HasStart: true, Start: skv.Key{Row: "b", ColF: "", ColQ: "x", Ts: 7}},
			{HasStart: true, HasEnd: true,
				Start: skv.Key{Row: "c"}, End: skv.Key{Row: "d", Ts: -1}},
		},
		settings: []iterator.Setting{
			{Name: "plus", Priority: 21, Opts: map[string]string{"type": "sum"}},
		},
		batch:   4096,
		traceID: 1 << 63,
		spanID:  42,
		tenant:  "acme",
		topo: &topology{
			wireBatch: 2048,
			scanPar:   4,
			tables: []topoTable{{
				name: "edges",
				scan: []iterator.Setting{{Name: "vers", Priority: 20}},
				tablets: []topoTablet{
					{start: "", end: "m", endpoint: "127.0.0.1:9001"},
					{start: "m", end: "", endpoint: "127.0.0.1:9002"},
				},
			}},
		},
	}
}

// TestScanReqRoundTrip pins the codec: every field survives
// encode/decode, including the spliced raw-topology view.
func TestScanReqRoundTrip(t *testing.T) {
	want := fuzzScanSeed()
	got, err := decodeScanReq(encodeScanReq(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.table != want.table || got.start != want.start || got.end != want.end ||
		got.batch != want.batch || got.traceID != want.traceID ||
		got.spanID != want.spanID || got.tenant != want.tenant {
		t.Fatalf("scalar fields differ: got %+v", got)
	}
	if !reflect.DeepEqual(got.ranges, want.ranges) {
		t.Fatalf("ranges differ: got %+v", got.ranges)
	}
	if !reflect.DeepEqual(got.settings, want.settings) {
		t.Fatalf("settings differ: got %+v", got.settings)
	}
	if !reflect.DeepEqual(got.topo, want.topo) {
		t.Fatalf("topology differs: got %+v", got.topo)
	}
	// The raw view re-splices into an identical request.
	re, err := decodeScanReq(encodeScanReq(scanReq{
		table: want.table, start: want.start, end: want.end,
		ranges: want.ranges, settings: want.settings, batch: want.batch,
		traceID: want.traceID, spanID: want.spanID, tenant: want.tenant,
		topoRaw: got.topoRaw,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.topo, want.topo) {
		t.Fatalf("topoRaw splice differs: got %+v", re.topo)
	}
}

// TestWriteReqRoundTrip pins the write codec including the tenant field.
func TestWriteReqRoundTrip(t *testing.T) {
	want := writeReq{
		table: "edges", start: "a", end: "",
		batch:   []byte{1, 2, 3},
		traceID: 99, tenant: "acme",
	}
	got, err := decodeWriteReq(encodeWriteReq(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.table != want.table || got.start != want.start || got.end != want.end ||
		string(got.batch) != string(want.batch) ||
		got.traceID != want.traceID || got.tenant != want.tenant {
		t.Fatalf("decodeWriteReq = %+v, want %+v", got, want)
	}
}

// FuzzDecodeScanReq: arbitrary bytes never panic, and whatever decodes
// cleanly must re-encode to a decodable request with identical fields.
func FuzzDecodeScanReq(f *testing.F) {
	f.Add(encodeScanReq(fuzzScanSeed()))
	f.Add(encodeScanReq(scanReq{table: "t"}))
	f.Add(encodeScanReq(scanReq{table: "t", tenant: "gold", batch: 1}))
	f.Add(encodeScanReq(scanReq{
		ranges:   []skv.Range{{HasEnd: true, End: skv.Key{Row: "z"}}},
		settings: []iterator.Setting{{Name: "f", Priority: 1}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeScanReq(data)
		if err != nil {
			return
		}
		again, err := decodeScanReq(encodeScanReq(r))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if again.table != r.table || again.tenant != r.tenant ||
			again.traceID != r.traceID || again.spanID != r.spanID ||
			again.batch != r.batch || len(again.ranges) != len(r.ranges) ||
			len(again.settings) != len(r.settings) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, r)
		}
	})
}

// FuzzDecodeWriteReq: same contract for the write codec.
func FuzzDecodeWriteReq(f *testing.F) {
	f.Add(encodeWriteReq(writeReq{table: "t", start: "a", end: "b",
		batch: []byte{9}, traceID: 7, tenant: "acme"}))
	f.Add(encodeWriteReq(writeReq{}))
	f.Add([]byte{})
	f.Add([]byte{2, 'h', 'i'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeWriteReq(data)
		if err != nil {
			return
		}
		again, err := decodeWriteReq(encodeWriteReq(r))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if again.table != r.table || again.tenant != r.tenant ||
			again.traceID != r.traceID || string(again.batch) != string(r.batch) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, r)
		}
	})
}
