package cache

import (
	"fmt"
	"sync"
	"testing"

	"graphulo/internal/skv"
)

func blockOf(n int, tag string) []skv.Entry {
	out := make([]skv.Entry, n)
	for i := range out {
		out[i] = skv.Entry{
			K: skv.Key{Row: fmt.Sprintf("%s-row%04d", tag, i), ColQ: "q", Ts: 1},
			V: skv.Value("0123456789"),
		}
	}
	return out
}

func TestHitMissAccounting(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("f", 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("f", 0, blockOf(10, "a"))
	if got, ok := c.Get("f", 0); !ok || len(got) != 10 {
		t.Fatalf("Get after Put = (%d entries, %v)", len(got), ok)
	}
	if _, ok := c.Get("f", 1); ok {
		t.Fatal("hit on absent block")
	}
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", c.Hits(), c.Misses())
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	one := blockOf(10, "x")
	per := entriesSize(one)
	c := New(3 * per) // room for exactly three blocks
	for i := 0; i < 4; i++ {
		c.Put("f", i, blockOf(10, "x"))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("f", 0); ok {
		t.Fatal("LRU tail (block 0) not evicted")
	}
	// Touch block 1, insert another: block 2 is now the tail.
	if _, ok := c.Get("f", 1); !ok {
		t.Fatal("block 1 missing")
	}
	c.Put("f", 9, blockOf(10, "x"))
	if _, ok := c.Get("f", 2); ok {
		t.Fatal("LRU order ignored: block 2 should have been evicted")
	}
	if _, ok := c.Get("f", 1); !ok {
		t.Fatal("recently-used block 1 evicted")
	}
	if c.Bytes() > 3*per {
		t.Fatalf("resident bytes %d exceed bound %d", c.Bytes(), 3*per)
	}
}

func TestOversizedBlockNotAdmitted(t *testing.T) {
	c := New(10)
	c.Put("f", 0, blockOf(100, "big"))
	if c.Len() != 0 {
		t.Fatal("oversized block admitted")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 5; i++ {
		c.Put("a", i, blockOf(2, "a"))
		c.Put("b", i, blockOf(2, "b"))
	}
	c.EvictFile("a")
	if c.Len() != 5 {
		t.Fatalf("Len after EvictFile = %d, want 5", c.Len())
	}
	if _, ok := c.Get("a", 3); ok {
		t.Fatal("evicted file still resident")
	}
	if _, ok := c.Get("b", 3); !ok {
		t.Fatal("other file's blocks evicted")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *BlockCache
	c.Put("f", 0, blockOf(1, "n"))
	if _, ok := c.Get("f", 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.EvictFile("f")
	if c.Hits() != 0 || c.Misses() != 0 || c.Bytes() != 0 || c.Len() != 0 {
		t.Fatal("nil cache reported nonzero stats")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				file := fmt.Sprintf("f%d", i%3)
				c.Put(file, i%20, blockOf(4, file))
				c.Get(file, (i+1)%20)
				if i%100 == 0 {
					c.EvictFile(file)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Fatal("negative resident size")
	}
}

func TestTenantSoftCapEvictsOwnBlocksFirst(t *testing.T) {
	one := blockOf(10, "x")
	size := entriesSize(one)
	// Room for 6 blocks total, soft cap of 2 blocks per tenant.
	c := New(6 * size)
	c.SetTenantSoftCap(2 * size)
	c.PutFor("fa", 0, "a", blockOf(10, "x"))
	c.PutFor("fa", 1, "a", blockOf(10, "x"))
	c.PutFor("fb", 0, "b", blockOf(10, "x"))
	// Tenant a crosses its cap: its own LRU block (fa,0) goes, b's stays.
	c.PutFor("fa", 2, "a", blockOf(10, "x"))
	if _, ok := c.Get("fa", 0); ok {
		t.Fatal("tenant a's LRU block should have been shed at the soft cap")
	}
	for _, probe := range []struct {
		file string
		idx  int
	}{{"fa", 1}, {"fa", 2}, {"fb", 0}} {
		if _, ok := c.Get(probe.file, probe.idx); !ok {
			t.Fatalf("block (%s,%d) evicted, want resident", probe.file, probe.idx)
		}
	}
	if got := c.TenantBytes("a"); got != 2*size {
		t.Fatalf("TenantBytes(a) = %d, want %d", got, 2*size)
	}
	if got := c.TenantBytes("b"); got != size {
		t.Fatalf("TenantBytes(b) = %d, want %d", got, size)
	}
}

func TestTenantSoftCapIsSoft(t *testing.T) {
	one := blockOf(10, "x")
	size := entriesSize(one)
	// A lone tenant over its soft cap but under the global bound keeps
	// only capBytes resident — the cap sheds its own blocks — while the
	// global LRU bound still holds regardless of partitioning.
	c := New(3 * size)
	c.SetTenantSoftCap(2 * size)
	for i := 0; i < 5; i++ {
		c.PutFor("f", i, "solo", blockOf(10, "x"))
	}
	if got := c.TenantBytes("solo"); got != 2*size {
		t.Fatalf("TenantBytes(solo) = %d, want %d", got, 2*size)
	}
	if got := c.Bytes(); got > 3*size {
		t.Fatalf("Bytes = %d, exceeds global bound %d", got, 3*size)
	}
	// Newest two blocks resident, older ones shed.
	for i := 3; i < 5; i++ {
		if _, ok := c.Get("f", i); !ok {
			t.Fatalf("block %d evicted, want resident", i)
		}
	}
}

func TestTenantSoftCapOffByDefault(t *testing.T) {
	c := New(1 << 20)
	c.PutFor("f", 0, "a", blockOf(10, "x"))
	if got := c.TenantBytes("a"); got != 0 {
		t.Fatalf("TenantBytes with partitioning off = %d, want 0", got)
	}
	// Turning the cap on retro-charges resident blocks.
	c.SetTenantSoftCap(1 << 20)
	if got := c.TenantBytes("a"); got == 0 {
		t.Fatal("SetTenantSoftCap must charge already-resident blocks")
	}
	// EvictFile keeps the per-tenant charges consistent.
	c.EvictFile("f")
	if got := c.TenantBytes("a"); got != 0 {
		t.Fatalf("TenantBytes after EvictFile = %d, want 0", got)
	}
}
