// Package cache implements the shared block cache of the read path: a
// size-bounded LRU over decoded rfile data blocks, keyed by (file,
// block index). Every rfile Reader in a data directory consults one
// BlockCache, so a block that several scans touch — repeated kernel
// passes, TwoTableIterator remote seeks, BFS rounds re-reading the same
// adjacency rows — is read from disk, CRC-verified, and decoded exactly
// once while it stays resident. Eviction is strict LRU by decoded byte
// size; hit and miss counters are atomic so the cluster metrics can
// snapshot them without locking the cache.
//
// A nil *BlockCache is a valid "cache disabled" value: every method is
// nil-receiver safe and behaves as a permanent miss, so callers thread
// the pointer through unconditionally.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"graphulo/internal/skv"
)

// DefaultMaxBytes is the block-cache capacity used when a caller asks
// for a cache without sizing it.
const DefaultMaxBytes = 32 << 20

// entryOverhead approximates the fixed per-entry heap cost (string
// headers, slice header, key struct) added to the payload bytes when
// charging a block against the capacity.
const entryOverhead = 64

// blockKey identifies one data block of one rfile.
type blockKey struct {
	file  string
	block int
}

// block is one resident cache element. tenant records who inserted it,
// for the per-tenant soft-cap accounting ("" = default tenant).
type block struct {
	key     blockKey
	tenant  string
	entries []skv.Entry
	size    int64
}

// BlockCache is a thread-safe LRU cache of decoded rfile blocks.
//
// Cache-partition hints: when a per-tenant soft cap is set
// (SetTenantSoftCap), each resident block is charged to the tenant that
// inserted it, and a tenant inserting past the cap evicts its own
// least-recently-used blocks first — so one tenant's table sweep cannot
// strip the whole cache from the others. The cap is soft: a tenant with
// no competition still uses the whole cache (global LRU eviction is the
// final backstop), and Get never discriminates — a hit is a hit no
// matter who faulted the block in.
type BlockCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu      sync.Mutex
	max     int64
	softCap int64 // per-tenant soft cap; 0 = partitioning off
	size    int64
	ll      *list.List // front = most recently used; values are *block
	items   map[blockKey]*list.Element
	// tenantBytes charges resident bytes to the inserting tenant; only
	// maintained while partitioning is on.
	tenantBytes map[string]int64
}

// New creates a cache bounded by maxBytes of decoded entries
// (maxBytes <= 0 selects DefaultMaxBytes).
func New(maxBytes int64) *BlockCache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &BlockCache{
		max:   maxBytes,
		ll:    list.New(),
		items: map[blockKey]*list.Element{},
	}
}

// entriesSize charges a decoded block by payload bytes plus a fixed
// per-entry overhead.
func entriesSize(entries []skv.Entry) int64 {
	var n int64
	for _, e := range entries {
		n += int64(len(e.K.Row)+len(e.K.ColF)+len(e.K.ColQ)+len(e.V)) + entryOverhead
	}
	return n
}

// Get returns the cached block and records a hit or miss. The returned
// slice is shared — callers must treat it as immutable.
func (c *BlockCache) Get(file string, blockIdx int) ([]skv.Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[blockKey{file, blockIdx}]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*block).entries, true
}

// Put inserts (or refreshes) a decoded block and evicts from the LRU
// tail until the cache fits its bound again. A block larger than the
// whole cache is not admitted. Equivalent to PutFor with the default
// tenant.
func (c *BlockCache) Put(file string, blockIdx int, entries []skv.Entry) {
	c.PutFor(file, blockIdx, "", entries)
}

// PutFor inserts a decoded block charged to tenant. When the per-tenant
// soft cap is on and this insert pushes the tenant over it, the
// tenant's own least-recently-used blocks are evicted first; global LRU
// eviction remains the final backstop for the cache-wide bound.
func (c *BlockCache) PutFor(file string, blockIdx int, tenant string, entries []skv.Entry) {
	if c == nil {
		return
	}
	size := entriesSize(entries)
	if size > c.max {
		return
	}
	key := blockKey{file, blockIdx}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.items[key]; dup {
		// Concurrent loaders of the same block race benignly: keep the
		// resident copy fresh in the LRU and drop the duplicate.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&block{key: key, tenant: tenant, entries: entries, size: size})
	c.size += size
	if c.softCap > 0 {
		c.tenantBytes[tenant] += size
		// Soft cap: shed this tenant's own LRU blocks (never the newly
		// inserted one) while it sits over its share.
		for c.tenantBytes[tenant] > c.softCap {
			el := c.lruOfTenantLocked(tenant)
			if el == nil || el == c.items[key] {
				break
			}
			c.removeLocked(el)
		}
	}
	for c.size > c.max {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
	}
}

// lruOfTenantLocked returns the least-recently-used resident block
// charged to tenant, or nil; caller holds c.mu.
func (c *BlockCache) lruOfTenantLocked(tenant string) *list.Element {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		if el.Value.(*block).tenant == tenant {
			return el
		}
	}
	return nil
}

// removeLocked unlinks one element; caller holds c.mu.
func (c *BlockCache) removeLocked(el *list.Element) {
	b := el.Value.(*block)
	c.ll.Remove(el)
	delete(c.items, b.key)
	c.size -= b.size
	if c.softCap > 0 {
		if rem := c.tenantBytes[b.tenant] - b.size; rem > 0 {
			c.tenantBytes[b.tenant] = rem
		} else {
			delete(c.tenantBytes, b.tenant)
		}
	}
}

// SetTenantSoftCap turns per-tenant accounting on with the given soft
// cap in bytes (<= 0 turns partitioning off). Call before the cache is
// shared; switching modes mid-flight resets the per-tenant charges.
func (c *BlockCache) SetTenantSoftCap(capBytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if capBytes <= 0 {
		c.softCap, c.tenantBytes = 0, nil
		return
	}
	c.softCap = capBytes
	c.tenantBytes = map[string]int64{}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		b := el.Value.(*block)
		c.tenantBytes[b.tenant] += b.size
	}
}

// TenantBytes returns the resident bytes charged to tenant (0 when
// partitioning is off).
func (c *BlockCache) TenantBytes(tenant string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantBytes[tenant]
}

// EvictFile drops every resident block of one file — called when an
// rfile is deleted (major compaction, table drop) so dead blocks stop
// occupying capacity.
func (c *BlockCache) EvictFile(file string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.file == file {
			c.removeLocked(el)
		}
	}
}

// Hits returns the cumulative hit count.
func (c *BlockCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the cumulative miss count.
func (c *BlockCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Bytes returns the resident decoded size.
func (c *BlockCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Len returns the number of resident blocks.
func (c *BlockCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
