// Package cache implements the shared block cache of the read path: a
// size-bounded LRU over decoded rfile data blocks, keyed by (file,
// block index). Every rfile Reader in a data directory consults one
// BlockCache, so a block that several scans touch — repeated kernel
// passes, TwoTableIterator remote seeks, BFS rounds re-reading the same
// adjacency rows — is read from disk, CRC-verified, and decoded exactly
// once while it stays resident. Eviction is strict LRU by decoded byte
// size; hit and miss counters are atomic so the cluster metrics can
// snapshot them without locking the cache.
//
// A nil *BlockCache is a valid "cache disabled" value: every method is
// nil-receiver safe and behaves as a permanent miss, so callers thread
// the pointer through unconditionally.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"graphulo/internal/skv"
)

// DefaultMaxBytes is the block-cache capacity used when a caller asks
// for a cache without sizing it.
const DefaultMaxBytes = 32 << 20

// entryOverhead approximates the fixed per-entry heap cost (string
// headers, slice header, key struct) added to the payload bytes when
// charging a block against the capacity.
const entryOverhead = 64

// blockKey identifies one data block of one rfile.
type blockKey struct {
	file  string
	block int
}

// block is one resident cache element.
type block struct {
	key     blockKey
	entries []skv.Entry
	size    int64
}

// BlockCache is a thread-safe LRU cache of decoded rfile blocks.
type BlockCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used; values are *block
	items map[blockKey]*list.Element
}

// New creates a cache bounded by maxBytes of decoded entries
// (maxBytes <= 0 selects DefaultMaxBytes).
func New(maxBytes int64) *BlockCache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &BlockCache{
		max:   maxBytes,
		ll:    list.New(),
		items: map[blockKey]*list.Element{},
	}
}

// entriesSize charges a decoded block by payload bytes plus a fixed
// per-entry overhead.
func entriesSize(entries []skv.Entry) int64 {
	var n int64
	for _, e := range entries {
		n += int64(len(e.K.Row)+len(e.K.ColF)+len(e.K.ColQ)+len(e.V)) + entryOverhead
	}
	return n
}

// Get returns the cached block and records a hit or miss. The returned
// slice is shared — callers must treat it as immutable.
func (c *BlockCache) Get(file string, blockIdx int) ([]skv.Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[blockKey{file, blockIdx}]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*block).entries, true
}

// Put inserts (or refreshes) a decoded block and evicts from the LRU
// tail until the cache fits its bound again. A block larger than the
// whole cache is not admitted.
func (c *BlockCache) Put(file string, blockIdx int, entries []skv.Entry) {
	if c == nil {
		return
	}
	size := entriesSize(entries)
	if size > c.max {
		return
	}
	key := blockKey{file, blockIdx}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.items[key]; dup {
		// Concurrent loaders of the same block race benignly: keep the
		// resident copy fresh in the LRU and drop the duplicate.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&block{key: key, entries: entries, size: size})
	c.size += size
	for c.size > c.max {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
	}
}

// removeLocked unlinks one element; caller holds c.mu.
func (c *BlockCache) removeLocked(el *list.Element) {
	b := el.Value.(*block)
	c.ll.Remove(el)
	delete(c.items, b.key)
	c.size -= b.size
}

// EvictFile drops every resident block of one file — called when an
// rfile is deleted (major compaction, table drop) so dead blocks stop
// occupying capacity.
func (c *BlockCache) EvictFile(file string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.file == file {
			c.removeLocked(el)
		}
	}
}

// Hits returns the cumulative hit count.
func (c *BlockCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the cumulative miss count.
func (c *BlockCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Bytes returns the resident decoded size.
func (c *BlockCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Len returns the number of resident blocks.
func (c *BlockCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
