// Package wal implements a segmented append-only write-ahead log, the
// durability floor under a tablet's memtable. Every write batch is
// appended as one CRC-guarded record before it is acknowledged; after a
// crash, Replay reconstructs the unflushed batches up to the last record
// whose checksum verifies, discarding a torn tail cleanly.
//
// Each tablet owns one log identified by a stable id. A log is a series
// of numbered segment files "<id>-<seq>.wal"; appends go to the highest
// segment, and minor compaction rotates to a fresh segment so that the
// segments covering the flushed memtable can be deleted. Concurrent
// appenders share fsyncs through group commit: whichever appender grabs
// the syncer role flushes every record written so far, and the rest
// simply wait for their record's sequence number to become durable.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphulo/internal/skv"
)

// castagnoli is the CRC-32C polynomial table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordHeaderLen is the fixed per-record prefix: u32 payload length and
// u32 CRC-32C of the payload, both little-endian.
const recordHeaderLen = 8

// Options tunes a log.
type Options struct {
	// NoSync skips the fsync on append; records still hit the OS page
	// cache. Meant for benchmarks and bulk loads that call Sync at
	// checkpoints.
	NoSync bool
	// MaxSegmentBytes rotates the active segment once it grows past this
	// size (default 8 MiB). Bounding segment size bounds single-file
	// replay cost and lets flushed prefixes be reclaimed sooner.
	MaxSegmentBytes int64
	// SyncObserver, when set, receives the wall-clock duration of every
	// fsync the log issues (group commits, rotations, explicit Syncs).
	SyncObserver func(time.Duration)
	// MaxBatchBytes bounds the in-memory record buffer that group
	// commit coalesces (default 1 MiB). Appends land in the buffer with
	// no syscall; the elected syncer drains it with one write plus one
	// fsync. While a sync is in flight and the buffer is full, further
	// appenders wait (overflow backpressure); with no sync in flight an
	// overflowing appender spills the buffer to the OS instead, so the
	// buffer never grows past the bound.
	MaxBatchBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	return o
}

// Log is one tablet's write-ahead log.
type Log struct {
	dir  string
	id   string
	opts Options

	mu         sync.Mutex
	cond       *sync.Cond
	f          *os.File
	activeSeq  uint64
	oldestLive uint64 // lowest segment seq not yet dropped
	segBytes   int64
	pending    []byte // encoded records accepted but not yet written to the file
	appendSeq  uint64 // records accepted (buffered or written to the OS)
	syncSeq    uint64 // records known durable
	syncing    bool   // a goroutine currently holds the syncer role
	closed     bool
}

func segmentName(id string, seq uint64) string {
	return fmt.Sprintf("%s-%012d.wal", id, seq)
}

// segments lists a log id's segment files in dir, sorted by sequence.
func segments(dir, id string) ([]uint64, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := id + "-"
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue // foreign file; GC elsewhere
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open creates the log's next active segment, numbered after any
// existing segments. Existing segments are never appended to — a torn
// tail from a crash must stay where Replay can cleanly truncate it.
func Open(dir, id string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := segments(dir, id)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	oldest := next
	if len(seqs) > 0 {
		oldest = seqs[0]
	}
	l := &Log{dir: dir, id: id, opts: opts.withDefaults(), oldestLive: oldest}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment creates segment seq as the active file and syncs the
// directory so the new entry survives a crash. Caller holds no lock
// (Open) or l.mu (rotation).
func (l *Log) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.id, seq)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.activeSeq = seq
	l.segBytes = 0
	return nil
}

// syncDir fsyncs a directory, making file creations in it durable.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return err
	}
	err = df.Sync()
	cerr := df.Close()
	if err != nil {
		return err
	}
	return cerr
}

// syncFile fsyncs f, reporting the elapsed time to the configured
// observer. The observer is immutable after Open, so this is safe with
// or without l.mu held.
func (l *Log) syncFile(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	if obs := l.opts.SyncObserver; obs != nil {
		obs(time.Since(start))
	}
	return err
}

// Append durably logs one write batch. It returns once the record is on
// stable storage (or written to the OS under NoSync). Group commit: the
// fsync that covers this record may be issued by a concurrent appender.
func (l *Log) Append(batch []skv.Entry) error {
	seq, err := l.AppendAsync(batch)
	if err != nil {
		return err
	}
	return l.WaitDurable(seq)
}

// AppendAsync accepts one record without waiting for it to be durable,
// returning its sequence number for WaitDurable. The split lets a
// caller order the append against its own in-memory state under its own
// lock, then wait for the fsync outside it — so concurrent writers
// still share fsyncs through group commit.
//
// Records are coalesced in an in-memory buffer: the append itself makes
// no syscall, and the syncer elected in commitLocked drains every
// buffered record with a single write before its fsync, so N concurrent
// writers share one buffer copy as well as one fsync. Under NoSync
// records are written straight through to the OS instead.
func (l *Log) AppendAsync(batch []skv.Entry) (uint64, error) {
	payload := skv.EncodeBatch(batch)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log %s", l.id)
	}
	if l.segBytes >= l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	recLen := int64(recordHeaderLen + len(payload))
	if l.opts.NoSync {
		if _, err := l.f.Write(hdr[:]); err != nil {
			return 0, err
		}
		if _, err := l.f.Write(payload); err != nil {
			return 0, err
		}
		l.segBytes += recLen
		l.appendSeq++
		l.syncSeq = l.appendSeq
		return l.appendSeq, nil
	}
	// Overflow backpressure: while a sync is in flight and this record
	// would push the coalescing buffer past its bound, wait for the
	// syncer to drain it. The wait also keeps the next fsync's batch
	// bounded, so one slow appender cannot make every waiter's commit
	// arbitrarily large.
	for l.syncing && int64(len(l.pending))+recLen > l.opts.MaxBatchBytes && len(l.pending) > 0 {
		l.cond.Wait()
		if l.closed {
			return 0, fmt.Errorf("wal: append to closed log %s", l.id)
		}
	}
	// No syncer to wait on: spill the full buffer to the OS ourselves
	// (no fsync) so the buffer never grows past its bound.
	if int64(len(l.pending))+recLen > l.opts.MaxBatchBytes && len(l.pending) > 0 {
		if err := l.writePendingLocked(); err != nil {
			return 0, err
		}
	}
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	l.segBytes += recLen
	l.appendSeq++
	return l.appendSeq, nil
}

// writePendingLocked writes the coalescing buffer through to the active
// segment without an fsync. Caller holds l.mu; waits out an in-flight
// syncer first so exactly one goroutine writes to the file at a time
// (interleaving appends would break replay's prefix ordering).
func (l *Log) writePendingLocked() error {
	for l.syncing {
		l.cond.Wait()
	}
	if len(l.pending) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.pending); err != nil {
		return err
	}
	l.pending = l.pending[:0]
	return nil
}

// WaitDurable blocks until record seq is on stable storage (a no-op
// under NoSync, and for records already covered by a rotation's sync).
func (l *Log) WaitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.NoSync {
		return nil
	}
	return l.commitLocked(seq)
}

// commitLocked blocks until record seq mine is durable, electing at most
// one goroutine at a time to sync on behalf of every pending appender.
// The syncer steals the whole coalescing buffer and drains it with one
// write plus one fsync outside the lock, so every record buffered by
// then shares the same two syscalls. Called and returns with l.mu held.
func (l *Log) commitLocked(mine uint64) error {
	for l.syncSeq < mine {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		// Commit window: yield once, lock released, before stealing the
		// buffer. Committers that are already runnable get to land
		// their records in it and ride this fsync instead of electing
		// their own; everyone else (appends past the buffer bound,
		// rotation, Close, later committers) waits on l.syncing, so the
		// invariants are exactly those of the fsync below. With nothing
		// else runnable the yield costs one scheduler call.
		l.mu.Unlock()
		runtime.Gosched()
		l.mu.Lock()
		f, target := l.f, l.appendSeq
		buf := l.pending
		l.pending = nil
		l.mu.Unlock()
		var n int
		var err error
		if len(buf) > 0 {
			n, err = f.Write(buf)
		}
		if err == nil {
			err = l.syncFile(f)
		}
		l.mu.Lock()
		l.syncing = false
		if err == nil && l.syncSeq < target {
			l.syncSeq = target
		} else if err != nil && n < len(buf) {
			// Requeue the unwritten tail so a later syncer retries it —
			// otherwise waiters whose records rode in buf would observe
			// syncSeq advance without their bytes ever reaching the file.
			l.pending = append(buf[n:], l.pending...)
		}
		l.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked syncs and closes the active segment and opens the next
// one. Caller holds l.mu; waits out any in-flight fsync and drains the
// coalescing buffer first, so every accepted record lands in the
// segment the returned mark covers.
func (l *Log) rotateLocked() error {
	if err := l.writePendingLocked(); err != nil {
		return err
	}
	for l.syncing {
		l.cond.Wait()
	}
	if !l.opts.NoSync {
		if err := l.syncFile(l.f); err != nil {
			return err
		}
	}
	l.syncSeq = l.appendSeq
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.activeSeq + 1)
}

// Rotate closes the active segment and starts a new one, returning a
// mark: every record appended so far lives in segments numbered <= mark,
// so once those records are flushed elsewhere (an rfile), the caller may
// DropThrough(mark). Call under the same lock that snapshots the
// memtable, so no write lands between snapshot and rotation. When the
// log holds no records at all — empty active segment and nothing older
// — Rotate is a no-op returning a mark below every live segment, so
// repeated flushes of an idle tablet don't churn segment files.
func (l *Log) Rotate() (mark uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: rotate on closed log %s", l.id)
	}
	if l.segBytes == 0 && l.oldestLive == l.activeSeq {
		return l.activeSeq - 1, nil
	}
	mark = l.activeSeq
	return mark, l.rotateLocked()
}

// DropThrough deletes every segment numbered <= mark. Safe to call after
// the records in those segments have been persisted to an rfile.
func (l *Log) DropThrough(mark uint64) error {
	seqs, err := segments(l.dir, l.id)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq > mark {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(l.id, seq))); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	l.mu.Lock()
	if mark+1 > l.oldestLive {
		l.oldestLive = mark + 1
	}
	if l.oldestLive > l.activeSeq {
		l.oldestLive = l.activeSeq
	}
	l.mu.Unlock()
	return nil
}

// Sync forces an fsync of the active segment (used with NoSync),
// draining any coalesced records first.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.writePendingLocked(); err != nil {
		return err
	}
	err := l.syncFile(l.f)
	if err == nil {
		l.syncSeq = l.appendSeq
	}
	return err
}

// Close syncs and closes the active segment. The segments stay on disk
// for Replay.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.writePendingLocked(); err != nil {
		l.closed = true
		l.cond.Broadcast()
		l.f.Close()
		return err
	}
	l.closed = true
	l.cond.Broadcast() // wake appenders stalled on overflow backpressure
	if err := l.syncFile(l.f); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Remove closes the log and deletes every one of its segments — the end
// of the tablet (table deletion or split).
func (l *Log) Remove() error {
	if err := l.Close(); err != nil {
		return err
	}
	return l.DropThrough(^uint64(0))
}

// Replay reads a log id's segments in order and returns the logged
// entries. Recovery is prefix-consistent: at the first record whose
// length, checksum, or payload fails to verify — a torn tail from a
// crash mid-append — replay stops cleanly and everything before it is
// returned. maxTs is the largest entry timestamp seen, for restoring
// the logical clock.
func Replay(dir, id string) (entries []skv.Entry, maxTs int64, err error) {
	seqs, err := segments(dir, id)
	if err != nil {
		return nil, 0, err
	}
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(id, seq)))
		if err != nil {
			return nil, 0, err
		}
		for len(data) > 0 {
			if len(data) < recordHeaderLen {
				return entries, maxTs, nil // torn header
			}
			n := binary.LittleEndian.Uint32(data[0:])
			want := binary.LittleEndian.Uint32(data[4:])
			rest := data[recordHeaderLen:]
			if uint64(len(rest)) < uint64(n) {
				return entries, maxTs, nil // torn payload
			}
			payload := rest[:n]
			if crc32.Checksum(payload, castagnoli) != want {
				return entries, maxTs, nil // corrupt record: stop at last valid prefix
			}
			batch, derr := skv.DecodeBatch(payload)
			if derr != nil {
				return entries, maxTs, nil
			}
			for _, e := range batch {
				if e.K.Ts > maxTs {
					maxTs = e.K.Ts
				}
			}
			entries = append(entries, batch...)
			data = rest[n:]
		}
	}
	return entries, maxTs, nil
}
