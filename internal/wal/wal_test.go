package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"graphulo/internal/skv"
)

func ent(row string, ts int64, v string) skv.Entry {
	return skv.Entry{K: skv.Key{Row: row, ColF: "f", ColQ: "q", Ts: ts}, V: skv.Value(v)}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []skv.Entry
	for i := 0; i < 10; i++ {
		batch := []skv.Entry{
			ent(fmt.Sprintf("r%03d", 2*i), int64(2*i+1), "a"),
			ent(fmt.Sprintf("r%03d", 2*i+1), int64(2*i+2), "b"),
		}
		want = append(want, batch...)
		if err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately no Close: replay must see synced appends.
	got, maxTs, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].K != want[i].K || string(got[i].V) != string(want[i].V) {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	if maxTs != 20 {
		t.Fatalf("maxTs = %d, want 20", maxTs)
	}
	l.Close()
}

func TestReplayTornTailStopsAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]skv.Entry{ent(fmt.Sprintf("r%d", i), int64(i+1), "v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop a few bytes off the last record.
	seg := filepath.Join(dir, segmentName("t000001", 1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("torn-tail replay kept %d records, want 4", len(got))
	}
	for i, e := range got {
		if e.K.Row != fmt.Sprintf("r%d", i) {
			t.Fatalf("record %d = %v", i, e.K)
		}
	}

	// Corrupt a byte inside the last still-valid record (all five
	// records are the same size here): CRC must reject it.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := int(st.Size()) / 5
	data[4*recSize-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("corrupt-record replay kept %d records, want 3", len(got))
	}
}

func TestRotateAndDropThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]skv.Entry{ent("a", 1, "1")}); err != nil {
		t.Fatal(err)
	}
	mark, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]skv.Entry{ent("b", 2, "2")}); err != nil {
		t.Fatal(err)
	}
	// Drop the pre-rotation segments, as a minor compaction would after
	// flushing entry "a" to an rfile.
	if err := l.DropThrough(mark); err != nil {
		t.Fatal(err)
	}
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].K.Row != "b" {
		t.Fatalf("post-drop replay = %v, want only b", got)
	}
	l.Close()
}

func TestSegmentSizeRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{MaxSegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append([]skv.Entry{ent(fmt.Sprintf("row%05d", i), int64(i+1), "value")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seqs, err := segments(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected auto-rotation to produce several segments, got %d", len(seqs))
	}
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("multi-segment replay = %d entries, want 20", len(got))
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := ent(fmt.Sprintf("w%02d-%03d", w, i), int64(w*perWriter+i+1), "v")
				if err := l.Append([]skv.Entry{e}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d entries, want %d", len(got), writers*perWriter)
	}
	seen := map[string]bool{}
	for _, e := range got {
		seen[e.K.Row] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("lost or duplicated rows: %d distinct", len(seen))
	}
}

func TestOpenNeverAppendsToExistingSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, "t000001", Options{})
	l.Append([]skv.Entry{ent("a", 1, "1")})
	l.Close()
	l2, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.activeSeq != 2 {
		t.Fatalf("reopen should start segment 2, got %d", l2.activeSeq)
	}
	l2.Append([]skv.Entry{ent("b", 2, "2")})
	l2.Close()
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replay across reopen = %d entries, want 2", len(got))
	}
}

func TestRotateNoOpOnEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "t000001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Idle flush loop: an empty log must not churn segment files.
	for i := 0; i < 5; i++ {
		mark, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.DropThrough(mark); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := segments(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("empty rotations churned segments: %v", seqs)
	}
	// A real record makes the next rotation rotate for real again.
	if err := l.Append([]skv.Entry{ent("a", 1, "v")}); err != nil {
		t.Fatal(err)
	}
	mark, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if mark != 1 {
		t.Fatalf("mark = %d, want 1", mark)
	}
	if err := l.DropThrough(mark); err != nil {
		t.Fatal(err)
	}
	got, _, err := Replay(dir, "t000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("dropped record still replayed: %v", got)
	}
}
