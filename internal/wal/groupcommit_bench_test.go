package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphulo/internal/skv"
)

// BenchmarkGroupCommit measures durable single-entry appends from
// concurrent committers; fsyncs/op shows how many commits shared each
// disk round-trip.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			var syncs atomic.Int64
			l, err := Open(b.TempDir(), "t", Options{SyncObserver: func(time.Duration) { syncs.Add(1) }})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			const total = 512
			per := total / writers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						e := skv.Entry{K: skv.Key{Row: fmt.Sprintf("w%d", w), ColQ: "q", Ts: 1}, V: []byte("v")}
						for j := 0; j < per; j++ {
							if err := l.Append([]skv.Entry{e}); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "commits/sec")
			b.ReportMetric(float64(syncs.Load())/float64(b.N), "fsyncs/op")
		})
	}
}
