package sched

import (
	"fmt"
	"sync/atomic"
)

// Budget is one query's resource allowance: how many entries its scans
// may return and how many wire bytes its writes may ship. Charges are
// atomic adds, cheap enough for the hot paths that also move the
// telemetry counters; the first charge past a limit returns a
// *BudgetError and every later charge keeps failing, so an over-budget
// query unwinds promptly at whichever site it next touches.
//
// A nil *Budget is "unlimited": both charge methods are nil-receiver
// safe no-ops. Budget implements telemetry.BudgetHook.
type Budget struct {
	tenant     string
	scanLimit  int64
	writeLimit int64
	scanUsed   atomic.Int64
	writeUsed  atomic.Int64
}

// NewBudget builds a standalone budget; limits <= 0 are unlimited.
func NewBudget(tenant string, scanEntries, writeBytes int64) *Budget {
	return &Budget{tenant: tenant, scanLimit: scanEntries, writeLimit: writeBytes}
}

// ChargeScanEntries charges n scanned entries against the budget.
func (b *Budget) ChargeScanEntries(n int64) error {
	if b == nil || b.scanLimit <= 0 {
		return nil
	}
	if used := b.scanUsed.Add(n); used > b.scanLimit {
		return &BudgetError{Tenant: b.tenant, Resource: "scan entries", Limit: b.scanLimit, Used: used}
	}
	return nil
}

// ChargeWriteBytes charges n written wire bytes against the budget.
func (b *Budget) ChargeWriteBytes(n int64) error {
	if b == nil || b.writeLimit <= 0 {
		return nil
	}
	if used := b.writeUsed.Add(n); used > b.writeLimit {
		return &BudgetError{Tenant: b.tenant, Resource: "write bytes", Limit: b.writeLimit, Used: used}
	}
	return nil
}

// ScanEntriesUsed returns the entries charged so far.
func (b *Budget) ScanEntriesUsed() int64 {
	if b == nil {
		return 0
	}
	return b.scanUsed.Load()
}

// WriteBytesUsed returns the wire bytes charged so far.
func (b *Budget) WriteBytesUsed() int64 {
	if b == nil {
		return 0
	}
	return b.writeUsed.Load()
}

// BudgetError reports a query cancelled for exhausting its budget.
type BudgetError struct {
	Tenant   string
	Resource string // "scan entries" or "write bytes"
	Limit    int64
	Used     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sched: query budget exhausted for tenant %q: %s %d over limit %d",
		e.Tenant, e.Resource, e.Used, e.Limit)
}
