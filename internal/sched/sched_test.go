package sched

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmitImmediate: with free slots Admit grants without waiting.
func TestAdmitImmediate(t *testing.T) {
	s := New(Config{MaxConcurrentQueries: 2})
	rel1, wait, err := s.Admit("a")
	if err != nil || wait != 0 {
		t.Fatalf("Admit: wait=%v err=%v", wait, err)
	}
	rel2, _, err := s.Admit("a")
	if err != nil {
		t.Fatalf("second Admit: %v", err)
	}
	if got := s.QueriesRunning(); got != 2 {
		t.Fatalf("QueriesRunning = %d, want 2", got)
	}
	rel1()
	rel2()
	if got := s.QueriesRunning(); got != 0 {
		t.Fatalf("QueriesRunning after release = %d, want 0", got)
	}
}

// TestAdmitRejectsWhenQueueFull: slots busy + queue full → typed error.
func TestAdmitRejectsWhenQueueFull(t *testing.T) {
	s := New(Config{MaxConcurrentQueries: 1, MaxQueuedQueries: -1})
	rel, _, err := s.Admit("a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	_, _, err = s.Admit("b")
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("Admit with full queue: err=%v, want *AdmissionError", err)
	}
	if ae.Tenant != "b" || ae.Limit != 1 {
		t.Fatalf("AdmissionError = %+v", ae)
	}
	rel()
	// Slot free again: admission recovers.
	rel2, _, err := s.Admit("b")
	if err != nil {
		t.Fatalf("Admit after release: %v", err)
	}
	rel2()
}

// TestAdmitQueues: a query over the slot limit waits until a release.
func TestAdmitQueues(t *testing.T) {
	s := New(Config{MaxConcurrentQueries: 1, MaxQueuedQueries: 4})
	rel, _, err := s.Admit("a")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	got := make(chan time.Duration, 1)
	go func() {
		rel2, wait, err := s.Admit("b")
		if err != nil {
			t.Error(err)
			got <- -1
			return
		}
		rel2()
		got <- wait
	}()
	// Give the second Admit time to queue, then free the slot.
	deadline := time.After(2 * time.Second)
	for s.QueriesQueued() == 0 {
		select {
		case <-deadline:
			t.Fatal("second Admit never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	rel()
	if wait := <-got; wait <= 0 {
		t.Fatalf("queued Admit reported wait %v, want > 0", wait)
	}
}

// TestNilSchedulerIsOpen: a nil *Scheduler admits and grants everything.
func TestNilSchedulerIsOpen(t *testing.T) {
	var s *Scheduler
	rel, wait, err := s.Admit("x")
	if err != nil || wait != 0 {
		t.Fatalf("nil Admit: wait=%v err=%v", wait, err)
	}
	rel()
	rel2, wait := s.AcquirePass("x")
	if wait != 0 {
		t.Fatalf("nil AcquirePass wait = %v", wait)
	}
	rel2()
	if s.PassLimited() || s.NewBudget("x") != nil {
		t.Fatal("nil scheduler must be unlimited")
	}
}

// TestFairShareRatios: with a full backlog queued, the grant order
// tracks tenant weights. The backlog is built behind a held slot and
// grants serialize through the single pass slot (a worker's release is
// what frees the slot for the next dispatch), so the recorded order is
// exactly the dispatcher's weighted order — no scheduling races.
func TestFairShareRatios(t *testing.T) {
	const perTenant = 120
	s := New(Config{
		MaxConcurrentQueries: -1,
		MaxConcurrentPasses:  1,
		TenantWeights:        map[string]int{"gold": 3, "bronze": 1},
	})
	blocker, _ := s.AcquirePass("gold")
	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	for _, tenant := range []string{"gold", "bronze"} {
		for w := 0; w < perTenant; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				release, _ := s.AcquirePass(tenant)
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				release()
			}(tenant)
		}
	}
	deadline := time.After(10 * time.Second)
	for s.PassesQueued() < 2*perTenant {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d passes queued", s.PassesQueued(), 2*perTenant)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	blocker()
	wg.Wait()
	if len(order) != 2*perTenant {
		t.Fatalf("granted %d passes, want %d", len(order), 2*perTenant)
	}
	// While both tenants still have queued passes (the first 4/3·perTenant
	// grants), gold is granted 3× as often as bronze.
	window := order[:perTenant+perTenant/3]
	gold := 0
	for _, tenant := range window {
		if tenant == "gold" {
			gold++
		}
	}
	bronze := len(window) - gold
	ratio := float64(gold) / float64(bronze)
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("gold:bronze grant ratio = %.2f (gold=%d bronze=%d in first %d grants), want ≈3",
			ratio, gold, bronze, len(window))
	}
}

// TestAdmitFairShareRatios: the admission wait queue dequeues by tenant
// weight, not arrival order. A full backlog is built behind a held
// query slot; grants then serialize through the single slot, so the
// recorded order is exactly the dispatcher's weighted order, and within
// the window where both tenants still have queued queries the 3:1
// weights pin a 3:1 grant ratio.
func TestAdmitFairShareRatios(t *testing.T) {
	const perTenant = 120
	s := New(Config{
		MaxConcurrentQueries: 1,
		MaxQueuedQueries:     4 * perTenant,
		TenantWeights:        map[string]int{"gold": 3, "bronze": 1},
	})
	blocker, _, err := s.Admit("gold")
	if err != nil {
		t.Fatalf("blocker Admit: %v", err)
	}
	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	for _, tenant := range []string{"gold", "bronze"} {
		for w := 0; w < perTenant; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				release, _, err := s.Admit(tenant)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				release()
			}(tenant)
		}
	}
	deadline := time.After(10 * time.Second)
	for s.QueriesQueued() < 2*perTenant {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d queries queued", s.QueriesQueued(), 2*perTenant)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	blocker()
	wg.Wait()
	if len(order) != 2*perTenant {
		t.Fatalf("admitted %d queries, want %d", len(order), 2*perTenant)
	}
	window := order[:perTenant+perTenant/3]
	gold := 0
	for _, tenant := range window {
		if tenant == "gold" {
			gold++
		}
	}
	bronze := len(window) - gold
	ratio := float64(gold) / float64(bronze)
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("gold:bronze admission ratio = %.2f (gold=%d bronze=%d in first %d grants), want ≈3",
			ratio, gold, bronze, len(window))
	}
}

// TestFairShareIdleTenantNotPenalized: a tenant joining late is not
// starved by the incumbent's accumulated virtual time.
func TestFairShareIdleTenantNotPenalized(t *testing.T) {
	s := New(Config{MaxConcurrentQueries: -1, MaxConcurrentPasses: 1})
	// Tenant a burns many grants while b idles.
	for i := 0; i < 100; i++ {
		release, _ := s.AcquirePass("a")
		release()
	}
	// Hold the only slot so b must queue, then verify b is granted
	// promptly on release (its vtime was reset to the clock).
	hold, _ := s.AcquirePass("a")
	done := make(chan struct{})
	go func() {
		release, _ := s.AcquirePass("b")
		release()
		close(done)
	}()
	for s.PassesQueued() == 0 {
		time.Sleep(time.Millisecond)
	}
	hold()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("late tenant starved after incumbent released")
	}
}

// TestBudgetScanEntries: charges under the limit pass, the one crossing
// it (and all later ones) fail with a typed error.
func TestBudgetScanEntries(t *testing.T) {
	b := NewBudget("acme", 100, 0)
	if err := b.ChargeScanEntries(60); err != nil {
		t.Fatalf("charge 60: %v", err)
	}
	if err := b.ChargeScanEntries(40); err != nil {
		t.Fatalf("charge to exactly 100: %v", err)
	}
	err := b.ChargeScanEntries(1)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-budget charge: err=%v, want *BudgetError", err)
	}
	if be.Tenant != "acme" || be.Resource != "scan entries" || be.Limit != 100 {
		t.Fatalf("BudgetError = %+v", be)
	}
	if b.ChargeScanEntries(1) == nil {
		t.Fatal("budget must keep failing once exhausted")
	}
	// Write side unlimited.
	if err := b.ChargeWriteBytes(1 << 40); err != nil {
		t.Fatalf("unlimited write charge: %v", err)
	}
}

// TestBudgetNil: nil budgets charge free.
func TestBudgetNil(t *testing.T) {
	var b *Budget
	if err := b.ChargeScanEntries(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargeWriteBytes(1 << 40); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerNewBudget: budgets mint only when a limit is configured.
func TestSchedulerNewBudget(t *testing.T) {
	if b := New(Config{}).NewBudget("x"); b != nil {
		t.Fatal("no limits configured: budget must be nil")
	}
	b := New(Config{ScanEntryBudget: 10}).NewBudget("x")
	if b == nil {
		t.Fatal("scan limit configured: budget must exist")
	}
	if err := b.ChargeScanEntries(11); err == nil {
		t.Fatal("over-limit charge must fail")
	}
}

// TestFoldJoinSeal: the first joiner leads, later ones follow, Seal
// closes the group and hands back every subscriber in join order.
func TestFoldJoinSeal(t *testing.T) {
	f := NewFolder[int]()
	g, leader := f.Join("k", 1)
	if !leader {
		t.Fatal("first join must lead")
	}
	g2, leader2 := f.Join("k", 2)
	if leader2 || g2 != g {
		t.Fatalf("second join: leader=%v sameGroup=%v", leader2, g2 == g)
	}
	if n := g.Subscribers(); n != 2 {
		t.Fatalf("Subscribers = %d, want 2", n)
	}
	subs := g.Seal()
	if len(subs) != 2 || subs[0] != 1 || subs[1] != 2 {
		t.Fatalf("Seal subs = %v", subs)
	}
	// After Seal the key is free: the next join leads a fresh group.
	g3, leader3 := f.Join("k", 3)
	if !leader3 || g3 == g {
		t.Fatal("join after Seal must lead a fresh group")
	}
	// Distinct keys never fold.
	if _, lead := f.Join("other", 4); !lead {
		t.Fatal("distinct key must lead")
	}
}

// TestFoldNilFolder: a nil folder degrades to solo groups.
func TestFoldNilFolder(t *testing.T) {
	var f *Folder[string]
	g, leader := f.Join("k", "solo")
	if !leader {
		t.Fatal("nil folder join must lead")
	}
	if subs := g.Seal(); len(subs) != 1 || subs[0] != "solo" {
		t.Fatalf("nil folder Seal = %v", subs)
	}
}

// TestFoldConcurrentJoins: many concurrent joiners of one key produce
// exactly one leader, and Seal sees every member.
func TestFoldConcurrentJoins(t *testing.T) {
	f := NewFolder[int]()
	const n = 64
	var leaders atomic.Int64
	var wg sync.WaitGroup
	groups := make([]*Group[int], n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, leader := f.Join("k", i)
			groups[i] = g
			if leader {
				leaders.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if leaders.Load() != 1 {
		t.Fatalf("leaders = %d, want 1", leaders.Load())
	}
	if subs := groups[0].Seal(); len(subs) != n {
		t.Fatalf("Seal saw %d subs, want %d", len(subs), n)
	}
}
