// Package sched is the concurrent query serving layer: it decides which
// queries may run (admission control), how much work each may do
// (per-query scan/write budgets), and in what order tablet scan passes
// from different tenants reach the storage layer (weighted fair-share
// queues). It also hosts the shared-scan folding machinery that lets
// concurrent compatible scans of the same tablet ride one physical
// iterator pass (fold.go).
//
// The package is deliberately dependency-free: the accumulo layer
// threads a *Scheduler through its scan and write entry points, and the
// telemetry layer consumes budgets through its BudgetHook interface.
// A nil *Scheduler means "scheduling off" — every method is
// nil-receiver safe and grants immediately.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by New when Config leaves a knob at zero.
const (
	// DefaultMaxConcurrentQueries bounds kernel queries in flight.
	DefaultMaxConcurrentQueries = 64
	// DefaultMaxQueuedQueries bounds queries waiting for a slot before
	// admission starts rejecting.
	DefaultMaxQueuedQueries = 256
)

// Config sizes a Scheduler.
type Config struct {
	// MaxConcurrentQueries bounds kernel queries executing at once; the
	// excess waits in a bounded admission queue. 0 selects
	// DefaultMaxConcurrentQueries; negative disables admission control.
	MaxConcurrentQueries int
	// MaxQueuedQueries bounds the admission wait queue; a query arriving
	// with the queue full is rejected with *AdmissionError. 0 selects
	// DefaultMaxQueuedQueries; negative rejects immediately when all
	// slots are busy.
	MaxQueuedQueries int
	// MaxConcurrentPasses bounds tablet scan passes in flight across the
	// whole process; waiting passes are dispatched from per-tenant
	// weighted queues (start-time fair queuing). 0 or negative leaves
	// passes unlimited — fair-share and shared-scan folding then never
	// engage, because no pass ever waits.
	MaxConcurrentPasses int
	// TenantWeights maps tenant label → fair-share weight. Tenants not
	// listed get weight 1. Under saturation each tenant's granted passes
	// approach weight/Σweights of the total.
	TenantWeights map[string]int
	// ScanEntryBudget bounds the entries one query may receive from
	// scans; 0 or negative is unlimited.
	ScanEntryBudget int64
	// WriteByteBudget bounds the wire bytes one query may write; 0 or
	// negative is unlimited.
	WriteByteBudget int64
}

// AdmissionError reports a query rejected at admission: every execution
// slot was busy and the wait queue was full.
type AdmissionError struct {
	Tenant string
	Limit  int // concurrent query slots
	Queued int // wait-queue bound
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: query admission rejected for tenant %q: %d queries running, %d queued",
		e.Tenant, e.Limit, e.Queued)
}

// Scheduler implements admission control and fair-share pass dispatch.
// All methods are safe for concurrent use and nil-receiver safe.
type Scheduler struct {
	cfg       Config
	slots     chan struct{}
	maxQueued int64
	queued    atomic.Int64
	pass      *passQueue
}

// New builds a Scheduler from cfg (see Config for zero-value defaults).
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg}
	maxQ := cfg.MaxConcurrentQueries
	if maxQ == 0 {
		maxQ = DefaultMaxConcurrentQueries
	}
	if maxQ > 0 {
		s.slots = make(chan struct{}, maxQ)
		queued := cfg.MaxQueuedQueries
		if queued == 0 {
			queued = DefaultMaxQueuedQueries
		}
		if queued < 0 {
			queued = 0
		}
		s.maxQueued = int64(queued)
	}
	if cfg.MaxConcurrentPasses > 0 {
		s.pass = newPassQueue(cfg.MaxConcurrentPasses, cfg.TenantWeights)
	}
	return s
}

// Admit claims a query execution slot, blocking in the bounded wait
// queue when all slots are busy. It returns the release func (call
// exactly once when the query finishes) and the time spent queued, or
// an *AdmissionError when the wait queue is full too.
func (s *Scheduler) Admit(tenant string) (release func(), wait time.Duration, err error) {
	if s == nil || s.slots == nil {
		return func() {}, 0, nil
	}
	select {
	case s.slots <- struct{}{}:
		return s.releaseSlot, 0, nil
	default:
	}
	if s.queued.Add(1) > s.maxQueued {
		s.queued.Add(-1)
		return nil, 0, &AdmissionError{Tenant: tenant, Limit: cap(s.slots), Queued: int(s.maxQueued)}
	}
	start := time.Now()
	s.slots <- struct{}{}
	s.queued.Add(-1)
	return s.releaseSlot, time.Since(start), nil
}

func (s *Scheduler) releaseSlot() { <-s.slots }

// QueriesRunning returns the number of admitted queries in flight.
func (s *Scheduler) QueriesRunning() int {
	if s == nil || s.slots == nil {
		return 0
	}
	return len(s.slots)
}

// QueriesQueued returns the number of queries waiting at admission.
func (s *Scheduler) QueriesQueued() int {
	if s == nil {
		return 0
	}
	return int(s.queued.Load())
}

// PassLimited reports whether tablet passes contend for slots — the
// precondition for fair-share dispatch and shared-scan folding.
func (s *Scheduler) PassLimited() bool { return s != nil && s.pass != nil }

// AcquirePass claims a tablet-pass slot for tenant, waiting in the
// tenant's fair-share queue when the process-wide pass limit is
// reached. release must be called exactly once when the pass completes;
// wait reports time spent queued. With no pass limit configured the
// grant is immediate.
func (s *Scheduler) AcquirePass(tenant string) (release func(), wait time.Duration) {
	if s == nil || s.pass == nil {
		return func() {}, 0
	}
	return s.pass.acquire(tenant)
}

// NewBudget mints a per-query budget from the configured limits, or nil
// when no budget is configured (nil *Budget charges are free).
func (s *Scheduler) NewBudget(tenant string) *Budget {
	if s == nil || (s.cfg.ScanEntryBudget <= 0 && s.cfg.WriteByteBudget <= 0) {
		return nil
	}
	return &Budget{
		tenant:     tenant,
		scanLimit:  s.cfg.ScanEntryBudget,
		writeLimit: s.cfg.WriteByteBudget,
	}
}

// --- fair-share pass dispatch ---

// passQueue dispatches tablet passes under a process-wide concurrency
// limit using start-time fair queuing: each tenant's virtual time
// advances by 1/weight per granted pass, and the pending tenant with
// the smallest virtual time is granted next. A tenant going active
// after idling re-enters at the queue's virtual clock, so it cannot
// bank credit while idle or be punished for it.
type passQueue struct {
	limit   int
	weights map[string]int

	mu      sync.Mutex
	running int
	vclock  float64
	tenants map[string]*tenantQueue
}

type tenantQueue struct {
	name    string
	weight  float64
	vtime   float64
	waiters []chan struct{}
}

func newPassQueue(limit int, weights map[string]int) *passQueue {
	return &passQueue{limit: limit, weights: weights, tenants: map[string]*tenantQueue{}}
}

func (p *passQueue) tenantLocked(name string) *tenantQueue {
	tq, ok := p.tenants[name]
	if !ok {
		w := p.weights[name]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: name, weight: float64(w)}
		p.tenants[name] = tq
	}
	return tq
}

func (p *passQueue) acquire(tenant string) (func(), time.Duration) {
	p.mu.Lock()
	tq := p.tenantLocked(tenant)
	if p.running < p.limit && !p.pendingLocked() {
		p.grantLocked(tq)
		p.mu.Unlock()
		return p.release, 0
	}
	if len(tq.waiters) == 0 && tq.vtime < p.vclock {
		tq.vtime = p.vclock
	}
	ch := make(chan struct{})
	tq.waiters = append(tq.waiters, ch)
	p.mu.Unlock()
	start := time.Now()
	<-ch
	return p.release, time.Since(start)
}

// pendingLocked reports whether any tenant has queued waiters.
func (p *passQueue) pendingLocked() bool {
	for _, tq := range p.tenants {
		if len(tq.waiters) > 0 {
			return true
		}
	}
	return false
}

// grantLocked accounts one granted pass to tq. The floor mirrors the
// enqueue-time reset for fast-path grants (a tenant going active after
// idling banks no credit) and keeps the virtual clock monotone.
func (p *passQueue) grantLocked(tq *tenantQueue) {
	p.running++
	if tq.vtime < p.vclock {
		tq.vtime = p.vclock
	}
	p.vclock = tq.vtime
	tq.vtime += 1 / tq.weight
}

func (p *passQueue) release() {
	p.mu.Lock()
	p.running--
	p.dispatchLocked()
	p.mu.Unlock()
}

// dispatchLocked grants freed slots to waiters, smallest virtual time
// first (ties broken by tenant name for determinism).
func (p *passQueue) dispatchLocked() {
	for p.running < p.limit {
		var best *tenantQueue
		for _, tq := range p.tenants {
			if len(tq.waiters) == 0 {
				continue
			}
			if best == nil || tq.vtime < best.vtime ||
				(tq.vtime == best.vtime && tq.name < best.name) {
				best = tq
			}
		}
		if best == nil {
			return
		}
		ch := best.waiters[0]
		best.waiters = best.waiters[1:]
		p.grantLocked(best)
		close(ch)
	}
}

// PassesQueued returns the number of tablet passes waiting for a slot.
func (s *Scheduler) PassesQueued() int {
	if s == nil || s.pass == nil {
		return 0
	}
	s.pass.mu.Lock()
	defer s.pass.mu.Unlock()
	n := 0
	for _, tq := range s.pass.tenants {
		n += len(tq.waiters)
	}
	return n
}
