// Package sched is the concurrent query serving layer: it decides which
// queries may run (admission control), how much work each may do
// (per-query scan/write budgets), and in what order tablet scan passes
// from different tenants reach the storage layer (weighted fair-share
// queues). It also hosts the shared-scan folding machinery that lets
// concurrent compatible scans of the same tablet ride one physical
// iterator pass (fold.go).
//
// The package is deliberately dependency-free: the accumulo layer
// threads a *Scheduler through its scan and write entry points, and the
// telemetry layer consumes budgets through its BudgetHook interface.
// A nil *Scheduler means "scheduling off" — every method is
// nil-receiver safe and grants immediately.
package sched

import (
	"fmt"
	"sync"
	"time"
)

// Defaults applied by New when Config leaves a knob at zero.
const (
	// DefaultMaxConcurrentQueries bounds kernel queries in flight.
	DefaultMaxConcurrentQueries = 64
	// DefaultMaxQueuedQueries bounds queries waiting for a slot before
	// admission starts rejecting.
	DefaultMaxQueuedQueries = 256
)

// Config sizes a Scheduler.
type Config struct {
	// MaxConcurrentQueries bounds kernel queries executing at once; the
	// excess waits in a bounded admission queue. 0 selects
	// DefaultMaxConcurrentQueries; negative disables admission control.
	MaxConcurrentQueries int
	// MaxQueuedQueries bounds the admission wait queue; a query arriving
	// with the queue full is rejected with *AdmissionError. 0 selects
	// DefaultMaxQueuedQueries; negative rejects immediately when all
	// slots are busy. Queued queries are dequeued by tenant fair share
	// (TenantWeights), not arrival order: under a saturated admission
	// queue each tenant's granted slots approach weight/Σweights.
	MaxQueuedQueries int
	// MaxConcurrentPasses bounds tablet scan passes in flight across the
	// whole process; waiting passes are dispatched from per-tenant
	// weighted queues (start-time fair queuing). 0 or negative leaves
	// passes unlimited — fair-share and shared-scan folding then never
	// engage, because no pass ever waits.
	MaxConcurrentPasses int
	// TenantWeights maps tenant label → fair-share weight, applied to
	// both the admission wait queue and the tablet-pass queues. Tenants
	// not listed get weight 1. Under saturation each tenant's grants
	// approach weight/Σweights of the total.
	TenantWeights map[string]int
	// ScanEntryBudget bounds the entries one query may receive from
	// scans; 0 or negative is unlimited.
	ScanEntryBudget int64
	// WriteByteBudget bounds the wire bytes one query may write; 0 or
	// negative is unlimited.
	WriteByteBudget int64
}

// AdmissionError reports a query rejected at admission: every execution
// slot was busy and the wait queue was full.
type AdmissionError struct {
	Tenant string
	Limit  int // concurrent query slots
	Queued int // wait-queue bound
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: query admission rejected for tenant %q: %d queries running, %d queued",
		e.Tenant, e.Limit, e.Queued)
}

// Scheduler implements admission control and fair-share pass dispatch.
// All methods are safe for concurrent use and nil-receiver safe.
type Scheduler struct {
	cfg       Config
	admit     *fairQueue
	maxQueued int
	pass      *fairQueue
}

// New builds a Scheduler from cfg (see Config for zero-value defaults).
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg}
	maxQ := cfg.MaxConcurrentQueries
	if maxQ == 0 {
		maxQ = DefaultMaxConcurrentQueries
	}
	if maxQ > 0 {
		s.admit = newFairQueue(maxQ, cfg.TenantWeights)
		queued := cfg.MaxQueuedQueries
		if queued == 0 {
			queued = DefaultMaxQueuedQueries
		}
		if queued < 0 {
			queued = 0
		}
		s.maxQueued = queued
	}
	if cfg.MaxConcurrentPasses > 0 {
		s.pass = newFairQueue(cfg.MaxConcurrentPasses, cfg.TenantWeights)
	}
	return s
}

// Admit claims a query execution slot, blocking in the bounded wait
// queue when all slots are busy. Queued queries are dispatched by
// tenant fair share (Config.TenantWeights), not arrival order, so a
// tenant flooding the admission queue cannot starve the others. It
// returns the release func (call exactly once when the query finishes)
// and the time spent queued, or an *AdmissionError when the wait queue
// is full too.
func (s *Scheduler) Admit(tenant string) (release func(), wait time.Duration, err error) {
	if s == nil || s.admit == nil {
		return func() {}, 0, nil
	}
	release, wait, ok := s.admit.acquireBounded(tenant, s.maxQueued)
	if !ok {
		return nil, 0, &AdmissionError{Tenant: tenant, Limit: s.admit.limit, Queued: s.maxQueued}
	}
	return release, wait, nil
}

// QueriesRunning returns the number of admitted queries in flight.
func (s *Scheduler) QueriesRunning() int {
	if s == nil || s.admit == nil {
		return 0
	}
	s.admit.mu.Lock()
	defer s.admit.mu.Unlock()
	return s.admit.running
}

// QueriesQueued returns the number of queries waiting at admission.
func (s *Scheduler) QueriesQueued() int {
	if s == nil || s.admit == nil {
		return 0
	}
	return s.admit.queued()
}

// PassLimited reports whether tablet passes contend for slots — the
// precondition for fair-share dispatch and shared-scan folding.
func (s *Scheduler) PassLimited() bool { return s != nil && s.pass != nil }

// AcquirePass claims a tablet-pass slot for tenant, waiting in the
// tenant's fair-share queue when the process-wide pass limit is
// reached. release must be called exactly once when the pass completes;
// wait reports time spent queued. With no pass limit configured the
// grant is immediate.
func (s *Scheduler) AcquirePass(tenant string) (release func(), wait time.Duration) {
	if s == nil || s.pass == nil {
		return func() {}, 0
	}
	return s.pass.acquire(tenant)
}

// NewBudget mints a per-query budget from the configured limits, or nil
// when no budget is configured (nil *Budget charges are free).
func (s *Scheduler) NewBudget(tenant string) *Budget {
	if s == nil || (s.cfg.ScanEntryBudget <= 0 && s.cfg.WriteByteBudget <= 0) {
		return nil
	}
	return &Budget{
		tenant:     tenant,
		scanLimit:  s.cfg.ScanEntryBudget,
		writeLimit: s.cfg.WriteByteBudget,
	}
}

// --- fair-share dispatch ---

// fairQueue grants slots under a concurrency limit using start-time
// fair queuing: each tenant's virtual time advances by 1/weight per
// granted slot, and the pending tenant with the smallest virtual time
// is granted next. A tenant going active after idling re-enters at the
// queue's virtual clock, so it cannot bank credit while idle or be
// punished for it. One instance backs the admission wait queue (query
// slots) and another the tablet-pass queue.
type fairQueue struct {
	limit   int
	weights map[string]int

	mu      sync.Mutex
	running int
	vclock  float64
	tenants map[string]*tenantQueue
}

type tenantQueue struct {
	name    string
	weight  float64
	vtime   float64
	waiters []chan struct{}
}

func newFairQueue(limit int, weights map[string]int) *fairQueue {
	return &fairQueue{limit: limit, weights: weights, tenants: map[string]*tenantQueue{}}
}

func (p *fairQueue) tenantLocked(name string) *tenantQueue {
	tq, ok := p.tenants[name]
	if !ok {
		w := p.weights[name]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: name, weight: float64(w)}
		p.tenants[name] = tq
	}
	return tq
}

func (p *fairQueue) acquire(tenant string) (func(), time.Duration) {
	release, wait, _ := p.acquireBounded(tenant, -1)
	return release, wait
}

// acquireBounded is acquire with a bound on the wait queue: when all
// slots are busy and maxQueued (≥ 0) waiters are already queued, it
// refuses instead of waiting (ok=false). maxQueued < 0 never refuses.
func (p *fairQueue) acquireBounded(tenant string, maxQueued int) (release func(), wait time.Duration, ok bool) {
	p.mu.Lock()
	tq := p.tenantLocked(tenant)
	if p.running < p.limit && !p.pendingLocked() {
		p.grantLocked(tq)
		p.mu.Unlock()
		return p.release, 0, true
	}
	if maxQueued >= 0 && p.queuedLocked() >= maxQueued {
		p.mu.Unlock()
		return nil, 0, false
	}
	if len(tq.waiters) == 0 && tq.vtime < p.vclock {
		tq.vtime = p.vclock
	}
	ch := make(chan struct{})
	tq.waiters = append(tq.waiters, ch)
	p.mu.Unlock()
	start := time.Now()
	<-ch
	return p.release, time.Since(start), true
}

// pendingLocked reports whether any tenant has queued waiters.
func (p *fairQueue) pendingLocked() bool {
	for _, tq := range p.tenants {
		if len(tq.waiters) > 0 {
			return true
		}
	}
	return false
}

// grantLocked accounts one granted pass to tq. The floor mirrors the
// enqueue-time reset for fast-path grants (a tenant going active after
// idling banks no credit) and keeps the virtual clock monotone.
func (p *fairQueue) grantLocked(tq *tenantQueue) {
	p.running++
	if tq.vtime < p.vclock {
		tq.vtime = p.vclock
	}
	p.vclock = tq.vtime
	tq.vtime += 1 / tq.weight
}

func (p *fairQueue) release() {
	p.mu.Lock()
	p.running--
	p.dispatchLocked()
	p.mu.Unlock()
}

// dispatchLocked grants freed slots to waiters, smallest virtual time
// first (ties broken by tenant name for determinism).
func (p *fairQueue) dispatchLocked() {
	for p.running < p.limit {
		var best *tenantQueue
		for _, tq := range p.tenants {
			if len(tq.waiters) == 0 {
				continue
			}
			if best == nil || tq.vtime < best.vtime ||
				(tq.vtime == best.vtime && tq.name < best.name) {
				best = tq
			}
		}
		if best == nil {
			return
		}
		ch := best.waiters[0]
		best.waiters = best.waiters[1:]
		p.grantLocked(best)
		close(ch)
	}
}

// queuedLocked counts waiters across every tenant.
func (p *fairQueue) queuedLocked() int {
	n := 0
	for _, tq := range p.tenants {
		n += len(tq.waiters)
	}
	return n
}

func (p *fairQueue) queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queuedLocked()
}

// PassesQueued returns the number of tablet passes waiting for a slot.
func (s *Scheduler) PassesQueued() int {
	if s == nil || s.pass == nil {
		return 0
	}
	return s.pass.queued()
}
