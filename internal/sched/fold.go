package sched

import "sync"

// Shared-scan folding. When tablet passes queue behind the pass limit,
// concurrent compatible scans of the same tablet — same endpoint,
// table, tablet band, iterator settings, and batch size, fingerprinted
// by the caller into the fold key — are collected into a Group while
// they wait. The first arrival is the leader: it queues for the pass
// slot, and every compatible scan arriving during that wait joins the
// group as a follower instead of queuing its own pass. When the
// leader's slot is granted it Seals the group (no more joiners) and
// runs ONE physical pass over the union of all subscribers' ranges,
// re-clipping delivered batches per subscriber. The wait is the fold
// window: with no pass limit nothing ever queues, and folding never
// engages.
//
// The Folder only manages group membership and lifecycle; delivery is
// the caller's (the accumulo relay knows wire batches and range
// clipping, this package does not). T is the caller's per-subscriber
// state. A nil *Folder disables folding: Join returns a solo group.
type Folder[T any] struct {
	mu     sync.Mutex
	groups map[string]*Group[T]
}

// NewFolder builds an empty fold registry.
func NewFolder[T any]() *Folder[T] {
	return &Folder[T]{groups: map[string]*Group[T]{}}
}

// Group is one fold group: a leader plus the followers that joined
// before Seal.
type Group[T any] struct {
	folder *Folder[T]
	key    string

	mu     sync.Mutex
	sealed bool
	subs   []T
}

// Join adds sub to the open group for key, creating the group when none
// is open. leader is true for the creator, which must later call Seal
// and serve every subscriber; followers only consume what the leader
// delivers. A sealed group no longer accepts joiners — the next arrival
// starts a fresh group.
func (f *Folder[T]) Join(key string, sub T) (g *Group[T], leader bool) {
	if f == nil {
		return &Group[T]{key: key, subs: []T{sub}}, true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.groups[key]; ok {
		g.mu.Lock()
		if !g.sealed {
			g.subs = append(g.subs, sub)
			g.mu.Unlock()
			return g, false
		}
		g.mu.Unlock()
		// Raced the leader's Seal; fall through to a fresh group.
	}
	g = &Group[T]{folder: f, key: key, subs: []T{sub}}
	f.groups[key] = g
	return g, true
}

// Seal closes the group to new joiners, unregisters it from the folder,
// and returns the final subscriber list (leader first, then followers
// in join order). The leader calls Seal once its pass slot is granted.
func (g *Group[T]) Seal() []T {
	if g.folder != nil {
		g.folder.mu.Lock()
		if g.folder.groups[g.key] == g {
			delete(g.folder.groups, g.key)
		}
		g.folder.mu.Unlock()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sealed = true
	return append([]T(nil), g.subs...)
}

// Subscribers returns the current member count — a test hook for
// synchronising on "the follower has joined" without racing Seal.
func (g *Group[T]) Subscribers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.subs)
}
