package schema

import (
	"testing"

	"graphulo/internal/accumulo"
	"graphulo/internal/assoc"
	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/skv"
)

func conn(t *testing.T) *accumulo.Connector {
	t.Helper()
	return accumulo.NewMiniCluster(accumulo.Config{TabletServers: 2, MemLimit: 128}).Connector()
}

func TestVertexNameRoundTrip(t *testing.T) {
	for _, v := range []int{0, 7, 99999999} {
		got, err := ParseVertex(VertexName(v))
		if err != nil || got != v {
			t.Fatalf("round trip %d → %v (%v)", v, got, err)
		}
	}
	if _, err := ParseVertex("bogus"); err == nil {
		t.Fatalf("expected error")
	}
	// Lexicographic order matches numeric order.
	if !(VertexName(2) < VertexName(10)) {
		t.Fatalf("zero padding broken")
	}
}

func TestAdjacencySchemaIngestUndirected(t *testing.T) {
	c := conn(t)
	s, err := NewAdjacencySchema(c, "G")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestGraph(gen.PaperGraph()); err != nil {
		t.Fatal(err)
	}
	a, err := ReadAssoc(c, s.Table)
	if err != nil {
		t.Fatal(err)
	}
	// 6 undirected edges → 12 directed entries.
	if a.NNZ() != 12 {
		t.Fatalf("adjacency nnz = %d, want 12", a.NNZ())
	}
	if a.At(VertexName(0), VertexName(1)) != 1 || a.At(VertexName(1), VertexName(0)) != 1 {
		t.Fatalf("edge (0,1) missing")
	}
	// Degree table: vertex 0 has degree 3.
	sc, _ := c.CreateScanner(s.DegTable)
	entries, _ := sc.Entries()
	degs := map[string]float64{}
	for _, e := range entries {
		v, _ := skv.DecodeFloat(e.V)
		degs[e.K.Row] = v
	}
	if degs[VertexName(0)] != 3 || degs[VertexName(4)] != 1 {
		t.Fatalf("degrees = %v", degs)
	}
}

func TestAdjacencySchemaDirected(t *testing.T) {
	c := conn(t)
	s, err := NewAdjacencySchema(c, "D")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Graph{N: 3, Edges: []gen.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	if err := s.IngestDirected(g); err != nil {
		t.Fatal(err)
	}
	a, _ := ReadAssoc(c, s.Table)
	if a.At(VertexName(0), VertexName(1)) != 1 {
		t.Fatalf("forward edge missing")
	}
	if a.At(VertexName(1), VertexName(0)) != 0 {
		t.Fatalf("directed ingest created reverse edge")
	}
	at, _ := ReadAssoc(c, s.TableT)
	if at.At(VertexName(1), VertexName(0)) != 1 {
		t.Fatalf("transpose table wrong")
	}
}

func TestMultiEdgeWeightsAccumulate(t *testing.T) {
	c := conn(t)
	s, err := NewAdjacencySchema(c, "W")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Graph{N: 2, Edges: []gen.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 1}}}
	if err := s.IngestGraph(g); err != nil {
		t.Fatal(err)
	}
	a, _ := ReadAssoc(c, s.Table)
	if a.At(VertexName(0), VertexName(1)) != 3 {
		t.Fatalf("multi-edge weight = %v, want 3 (sum combiner)", a.At(VertexName(0), VertexName(1)))
	}
}

func TestWriteReadAssocRoundTrip(t *testing.T) {
	c := conn(t)
	if err := c.TableOperations().Create("RT"); err != nil {
		t.Fatal(err)
	}
	a := assoc.New([]assoc.Entry{
		{Row: "r1", Col: "c1", Val: 1.5}, {Row: "r2", Col: "c2", Val: -2},
	}, semiring.PlusTimes)
	if err := WriteAssoc(c, "RT", a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssoc(c, "RT")
	if err != nil {
		t.Fatal(err)
	}
	if got.At("r1", "c1") != 1.5 || got.At("r2", "c2") != -2 {
		t.Fatalf("round trip wrong:\n%v", got)
	}
}

func TestD4MSchema(t *testing.T) {
	c := conn(t)
	d, err := NewD4M(c, "T")
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{ID: "r1", Fields: map[string]string{"color": "red", "size": "L"}},
		{ID: "r2", Fields: map[string]string{"color": "red", "size": "S"}},
		{ID: "r3", Fields: map[string]string{"color": "blue"}},
	}
	if err := d.Ingest(records); err != nil {
		t.Fatal(err)
	}
	// Tedge: r1 has columns color|red and size|L.
	te, err := ReadAssoc(c, d.Tedge)
	if err != nil {
		t.Fatal(err)
	}
	if te.At("r1", "color|red") != 1 || te.At("r1", "size|L") != 1 {
		t.Fatalf("Tedge wrong:\n%v", te)
	}
	// TedgeT is the transpose.
	tt, err := ReadAssoc(c, d.TedgeT)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At("color|red", "r1") != 1 || tt.At("color|red", "r2") != 1 {
		t.Fatalf("TedgeT wrong:\n%v", tt)
	}
	// Tdeg counts: color|red appears twice.
	degs, err := d.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	if degs["color|red"] != 2 || degs["color|blue"] != 1 {
		t.Fatalf("degrees = %v", degs)
	}
	// Traw keeps the flattened record.
	raw, err := d.Raw("r1")
	if err != nil {
		t.Fatal(err)
	}
	if raw != "color=red,size=L" {
		t.Fatalf("raw = %q", raw)
	}
	if _, err := d.Raw("nosuch"); err == nil {
		t.Fatalf("expected error for missing record")
	}
}

// D4M facet search: multiplying TedgeT × Tedge correlates columns — the
// "multiplication of two arrays represents a correlation" property of
// §II.B.3.
func TestD4MCorrelation(t *testing.T) {
	c := conn(t)
	d, err := NewD4M(c, "C")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest([]Record{
		{ID: "r1", Fields: map[string]string{"color": "red", "size": "L"}},
		{ID: "r2", Fields: map[string]string{"color": "red", "size": "L"}},
		{ID: "r3", Fields: map[string]string{"color": "blue", "size": "L"}},
	}); err != nil {
		t.Fatal(err)
	}
	tt, _ := ReadAssoc(c, d.TedgeT)
	te, _ := ReadAssoc(c, d.Tedge)
	corr := assoc.Multiply(tt, te)
	// color|red co-occurs with size|L twice.
	if corr.At("color|red", "size|L") != 2 {
		t.Fatalf("correlation wrong:\n%v", corr)
	}
	if corr.At("color|blue", "size|L") != 1 {
		t.Fatalf("correlation wrong:\n%v", corr)
	}
}
