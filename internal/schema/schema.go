// Package schema implements the paper's §II.B graph schemas on NoSQL
// tables: the adjacency-matrix schema, the incidence-matrix schema, the
// degree table, and the D4M 2.0 four-table schema (Tedge, TedgeT, Tdeg,
// Traw) with exploded column keys.
package schema

import (
	"fmt"
	"sort"
	"strconv"

	"graphulo/internal/accumulo"
	"graphulo/internal/assoc"
	"graphulo/internal/gen"
	"graphulo/internal/iterator"
	"graphulo/internal/semiring"
	"graphulo/internal/skv"
)

// Column families name the schema channels, so the storage layer can
// place each channel in its own rfile locality group (format v4) and a
// scan over one channel skips the others' blocks entirely.
const (
	// EdgeFamily holds adjacency/incidence matrix entries.
	EdgeFamily = "edge"
	// DegFamily holds degree (and other per-row reduction) entries.
	DegFamily = "deg"
	// RawFamily holds raw record text (the D4M Traw channel).
	RawFamily = "raw"
)

// EdgeBand is the family band kernels push down when scanning the edge
// channel: EdgeFamily plus the unnamed family, so tables written before
// the channels were named (and generic WriteAssoc output, which writes
// under "") stay fully visible to banded kernels.
func EdgeBand() []string { return []string{"", EdgeFamily} }

// DegBand is the degree-channel counterpart of EdgeBand.
func DegBand() []string { return []string{"", DegFamily} }

// VertexName formats vertex ids as fixed-width row keys so lexicographic
// key order matches numeric order — the standard NoSQL graph convention.
func VertexName(v int) string { return fmt.Sprintf("v%08d", v) }

// ParseVertex recovers the id from a VertexName key.
func ParseVertex(key string) (int, error) {
	if len(key) != 9 || key[0] != 'v' {
		return 0, fmt.Errorf("schema: bad vertex key %q", key)
	}
	return strconv.Atoi(key[1:])
}

// EdgeName formats edge ids for incidence-schema row keys.
func EdgeName(e int) string { return fmt.Sprintf("e%08d", e) }

// AdjacencySchema manages a pair of tables holding a graph's adjacency
// matrix and its transpose, plus a degree table — the layout Graphulo
// kernels expect (A and Aᵀ so either orientation can be the multiply's
// inner dimension).
type AdjacencySchema struct {
	Table     string // A: row = source, colQ = destination
	TableT    string // Aᵀ
	DegTable  string // row = vertex, value = out-degree
	conn      *accumulo.Connector
	batchSize int
}

// NewAdjacencySchema creates (or reuses) the three tables.
func NewAdjacencySchema(conn *accumulo.Connector, base string) (*AdjacencySchema, error) {
	s := &AdjacencySchema{
		Table:     base,
		TableT:    base + "T",
		DegTable:  base + "Deg",
		conn:      conn,
		batchSize: 4096,
	}
	ops := conn.TableOperations()
	for _, name := range []string{s.Table, s.TableT} {
		if !ops.Exists(name) {
			if err := ops.Create(name); err != nil {
				return nil, err
			}
			// Edge weights accumulate: sum-combine at every scope.
			if err := ops.RemoveIterator(name, "versioning"); err != nil {
				return nil, err
			}
			if err := ops.AttachIterator(name, iterator.Setting{Name: "sum", Priority: 10}); err != nil {
				return nil, err
			}
		}
	}
	if !ops.Exists(s.DegTable) {
		if err := ops.Create(s.DegTable); err != nil {
			return nil, err
		}
		if err := ops.RemoveIterator(s.DegTable, "versioning"); err != nil {
			return nil, err
		}
		if err := ops.AttachIterator(s.DegTable, iterator.Setting{Name: "sum", Priority: 10}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// IngestGraph writes an undirected graph into the schema: every edge
// lands in A, Aᵀ (same matrix for undirected graphs, kept anyway so the
// multiply path is uniform), and increments both endpoint degrees.
func (s *AdjacencySchema) IngestGraph(g gen.Graph) error {
	wA, err := s.conn.CreateBatchWriter(s.Table, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wT, err := s.conn.CreateBatchWriter(s.TableT, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wD, err := s.conn.CreateBatchWriter(s.DegTable, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	for _, e := range g.Edges {
		u, v := VertexName(e.U), VertexName(e.V)
		if err := wA.PutFloat(u, EdgeFamily, v, 1); err != nil {
			return err
		}
		if err := wA.PutFloat(v, EdgeFamily, u, 1); err != nil {
			return err
		}
		if err := wT.PutFloat(u, EdgeFamily, v, 1); err != nil {
			return err
		}
		if err := wT.PutFloat(v, EdgeFamily, u, 1); err != nil {
			return err
		}
		if err := wD.PutFloat(u, DegFamily, "deg", 1); err != nil {
			return err
		}
		if err := wD.PutFloat(v, DegFamily, "deg", 1); err != nil {
			return err
		}
	}
	for _, w := range []*accumulo.BatchWriter{wA, wT, wD} {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// IngestDirected writes a directed graph: A gets u→v, Aᵀ gets v→u, and
// the degree table records out-degrees.
func (s *AdjacencySchema) IngestDirected(g gen.Graph) error {
	wA, err := s.conn.CreateBatchWriter(s.Table, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wT, err := s.conn.CreateBatchWriter(s.TableT, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wD, err := s.conn.CreateBatchWriter(s.DegTable, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	for _, e := range g.Edges {
		u, v := VertexName(e.U), VertexName(e.V)
		if err := wA.PutFloat(u, EdgeFamily, v, 1); err != nil {
			return err
		}
		if err := wT.PutFloat(v, EdgeFamily, u, 1); err != nil {
			return err
		}
		if err := wD.PutFloat(u, DegFamily, "deg", 1); err != nil {
			return err
		}
	}
	for _, w := range []*accumulo.BatchWriter{wA, wT, wD} {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadAssoc scans a whole table back into an associative array. The
// scan is consumed as a stream: entries fold into the array's builder
// one wire batch at a time, so the transfer never holds the table twice
// (raw entries plus array).
func ReadAssoc(conn *accumulo.Connector, table string) (*assoc.Assoc, error) {
	sc, err := conn.CreateScanner(table)
	if err != nil {
		return nil, err
	}
	st, err := sc.Stream()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	b := assoc.NewBuilder(semiring.PlusTimes)
	for e, ok := st.Next(); ok; e, ok = st.Next() {
		if v, ok := skv.DecodeFloat(e.V); ok {
			b.Add(e.K.Row, e.K.ColQ, v)
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// WriteAssoc writes an associative array into a table (row → colQ).
func WriteAssoc(conn *accumulo.Connector, table string, a *assoc.Assoc) error {
	w, err := conn.CreateBatchWriter(table, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	for _, e := range a.Entries() {
		if err := w.PutFloat(e.Row, "", e.Col, e.Val); err != nil {
			return err
		}
	}
	return w.Close()
}

// IncidenceSchema manages the incidence-matrix layout of §II.B.2 on
// tables: E (row = edge id, colQ = vertex) and its transpose ET
// (row = vertex, colQ = edge id). The paper's Algorithm 1 runs on this
// pair.
type IncidenceSchema struct {
	Table  string // E
	TableT string // Eᵀ
	conn   *accumulo.Connector
}

// NewIncidenceSchema creates (or reuses) the two tables.
func NewIncidenceSchema(conn *accumulo.Connector, base string) (*IncidenceSchema, error) {
	s := &IncidenceSchema{Table: base + "E", TableT: base + "ET", conn: conn}
	ops := conn.TableOperations()
	for _, name := range []string{s.Table, s.TableT} {
		if !ops.Exists(name) {
			if err := ops.Create(name); err != nil {
				return nil, err
			}
			if err := ops.RemoveIterator(name, "versioning"); err != nil {
				return nil, err
			}
			if err := ops.AttachIterator(name, iterator.Setting{Name: "sum", Priority: 10}); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// IngestGraph writes the unoriented incidence matrix of g: edge i gets
// E(eᵢ, u) = E(eᵢ, v) = 1.
func (s *IncidenceSchema) IngestGraph(g gen.Graph) error {
	wE, err := s.conn.CreateBatchWriter(s.Table, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wT, err := s.conn.CreateBatchWriter(s.TableT, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	for i, e := range g.Edges {
		edge := EdgeName(i)
		for _, v := range []int{e.U, e.V} {
			vert := VertexName(v)
			if err := wE.PutFloat(edge, EdgeFamily, vert, 1); err != nil {
				return err
			}
			if err := wT.PutFloat(vert, EdgeFamily, edge, 1); err != nil {
				return err
			}
		}
	}
	for _, w := range []*accumulo.BatchWriter{wE, wT} {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// D4M implements the D4M 2.0 schema of §II.B.3: Tedge holds one row per
// record with exploded "field|value" columns, TedgeT its transpose, Tdeg
// the column-degree counts, and Traw the raw record text.
type D4M struct {
	Tedge  string
	TedgeT string
	Tdeg   string
	Traw   string
	conn   *accumulo.Connector
}

// NewD4M creates the four tables with the appropriate combiners.
func NewD4M(conn *accumulo.Connector, base string) (*D4M, error) {
	d := &D4M{
		Tedge:  base + "edge",
		TedgeT: base + "edgeT",
		Tdeg:   base + "deg",
		Traw:   base + "raw",
		conn:   conn,
	}
	ops := conn.TableOperations()
	for _, name := range []string{d.Tedge, d.TedgeT, d.Traw} {
		if !ops.Exists(name) {
			if err := ops.Create(name); err != nil {
				return nil, err
			}
		}
	}
	if !ops.Exists(d.Tdeg) {
		if err := ops.Create(d.Tdeg); err != nil {
			return nil, err
		}
		if err := ops.RemoveIterator(d.Tdeg, "versioning"); err != nil {
			return nil, err
		}
		if err := ops.AttachIterator(d.Tdeg, iterator.Setting{Name: "sum", Priority: 10}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Record is one dense input record: an id plus field → value pairs.
type Record struct {
	ID     string
	Fields map[string]string
}

// ExplodedColumn builds the D4M "field|value" column key.
func ExplodedColumn(field, value string) string { return field + "|" + value }

// Ingest explodes records into the four tables: each unique
// field|value pair becomes a column of Tedge with value 1, TedgeT holds
// the transpose, Tdeg counts column occurrences, and Traw stores the
// flattened record.
func (d *D4M) Ingest(records []Record) error {
	we, err := d.conn.CreateBatchWriter(d.Tedge, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wt, err := d.conn.CreateBatchWriter(d.TedgeT, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wd, err := d.conn.CreateBatchWriter(d.Tdeg, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	wr, err := d.conn.CreateBatchWriter(d.Traw, accumulo.BatchWriterConfig{})
	if err != nil {
		return err
	}
	for _, rec := range records {
		fields := make([]string, 0, len(rec.Fields))
		for f := range rec.Fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		raw := ""
		for _, f := range fields {
			col := ExplodedColumn(f, rec.Fields[f])
			if err := we.PutFloat(rec.ID, EdgeFamily, col, 1); err != nil {
				return err
			}
			if err := wt.PutFloat(col, EdgeFamily, rec.ID, 1); err != nil {
				return err
			}
			if err := wd.PutFloat(col, DegFamily, "deg", 1); err != nil {
				return err
			}
			if raw != "" {
				raw += ","
			}
			raw += f + "=" + rec.Fields[f]
		}
		if err := wr.Put(rec.ID, RawFamily, "raw", skv.Value(raw)); err != nil {
			return err
		}
	}
	for _, w := range []*accumulo.BatchWriter{we, wt, wd, wr} {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Degrees reads Tdeg back as column → count, consuming the scan as a
// stream.
func (d *D4M) Degrees() (map[string]float64, error) {
	sc, err := d.conn.CreateScanner(d.Tdeg)
	if err != nil {
		return nil, err
	}
	st, err := sc.Stream()
	if err != nil {
		return nil, err
	}
	return st.CollectFloatByRow()
}

// Raw reads one record's flattened text back from Traw.
func (d *D4M) Raw(id string) (string, error) {
	sc, err := d.conn.CreateScanner(d.Traw)
	if err != nil {
		return "", err
	}
	sc.SetRange(skv.ExactRow(id))
	entries, err := sc.Entries()
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("schema: no raw record %q", id)
	}
	return string(entries[0].V), nil
}
