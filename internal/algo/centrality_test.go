package algo

import (
	"math"
	"testing"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

func TestDegreeCentrality(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.PaperGraph())
	deg := DegreeCentrality(adj)
	want := []float64{3, 3, 3, 2, 1}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("degree = %v, want %v", deg, want)
		}
	}
}

func TestEigenvectorCentralityStar(t *testing.T) {
	// Star graph: the hub has the highest eigenvector centrality; all
	// leaves are symmetric.
	adj := gen.AdjacencyPattern(gen.Star(8))
	res := EigenvectorCentrality(adj, 1e-12, 2000)
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	hub := res.Scores[0]
	for v := 1; v < 8; v++ {
		if res.Scores[v] >= hub {
			t.Fatalf("leaf %d score %v >= hub %v", v, res.Scores[v], hub)
		}
		if math.Abs(res.Scores[v]-res.Scores[1]) > 1e-6 {
			t.Fatalf("leaves asymmetric: %v vs %v", res.Scores[v], res.Scores[1])
		}
	}
	// For a star K1,n: hub/leaf ratio is sqrt(n). The cosine stopping
	// rule bounds the angle, not the entrywise error, so allow 1e-4.
	if ratio := hub / res.Scores[1]; math.Abs(ratio-math.Sqrt(7)) > 1e-4 {
		t.Fatalf("hub/leaf = %v, want sqrt(7)", ratio)
	}
}

func TestEigenvectorMatchesPowerOracle(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(20, 60, 13))
	adj := gen.AdjacencyPattern(g)
	res := EigenvectorCentrality(adj, 1e-13, 5000)
	// Ax ≈ λx: compute Rayleigh quotient and residual.
	ax := sparse.SpMV(adj, res.Scores, semiring.PlusTimes)
	lambda := dot(ax, res.Scores)
	for i := range ax {
		if math.Abs(ax[i]-lambda*res.Scores[i]) > 1e-5 {
			t.Fatalf("eigen residual too large at %d: %v vs %v", i, ax[i], lambda*res.Scores[i])
		}
	}
}

func TestKatzCentralityClosedForm(t *testing.T) {
	// Katz with the paper's accumulation equals Σ_k αᵏ(Aᵏ·1)
	// entry-wise; verify against explicit truncated series.
	g := gen.Dedup(gen.ErdosRenyi(12, 25, 17))
	adj := gen.AdjacencyPattern(g)
	alpha := 0.05
	res := KatzCentrality(adj, alpha, 1e-14, 200)
	if !res.Converged {
		t.Fatalf("katz did not converge")
	}
	n := adj.Rows()
	want := make([]float64, n)
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	ak := alpha
	for k := 0; k < 200; k++ {
		d = sparse.SpMV(adj, d, semiring.PlusTimes)
		for i := range want {
			want[i] += ak * d[i]
		}
		ak *= alpha
	}
	for i := range want {
		if math.Abs(res.Scores[i]-want[i]) > 1e-9 {
			t.Fatalf("katz[%d] = %v, want %v", i, res.Scores[i], want[i])
		}
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// On a k-regular graph, PageRank is uniform.
	adj := gen.AdjacencyPattern(gen.Cycle(10))
	res := PageRank(adj, 0.15, 1e-14, 5000)
	if !res.Converged {
		t.Fatalf("pagerank did not converge")
	}
	for i, v := range res.Scores {
		if math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("pagerank[%d] = %v, want 0.1", i, v)
		}
	}
}

func TestPageRankSumsToOneAndRanksHub(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Star(9))
	res := PageRank(adj, 0.15, 1e-14, 5000)
	sum := 0.0
	for _, v := range res.Scores {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pagerank sums to %v", sum)
	}
	for v := 1; v < 9; v++ {
		if res.Scores[v] >= res.Scores[0] {
			t.Fatalf("hub should dominate: %v vs %v", res.Scores[0], res.Scores[v])
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Directed chain 0→1→2: vertex 2 is dangling; ranks must still sum
	// to 1 and be finite.
	g := gen.Graph{N: 3, Edges: []gen.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	adj := gen.AdjacencyDirected(g)
	res := PageRank(adj, 0.15, 1e-14, 10000)
	sum := 0.0
	for _, v := range res.Scores {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("bad rank %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if !(res.Scores[2] > res.Scores[1] && res.Scores[1] > res.Scores[0]) {
		t.Fatalf("chain ranks should increase downstream: %v", res.Scores)
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: interior vertices lie on shortest paths. For
	// undirected graphs each unordered pair is counted twice (once per
	// direction); vertex 2 sits on paths {0,1}×{3,4} and {0↔3,0↔4,1↔3,
	// 1↔4} → raw score 2·4=8; classical undirected BC of centre = 4.
	adj := gen.AdjacencyPattern(gen.Path(5))
	bc := BetweennessCentrality(adj)
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("bc = %v, want %v", bc, want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star hub lies on every leaf-pair path: (n−1)(n−2) directed pairs.
	adj := gen.AdjacencyPattern(gen.Star(6))
	bc := BetweennessCentrality(adj)
	if math.Abs(bc[0]-20) > 1e-9 { // 5·4 = 20
		t.Fatalf("hub bc = %v, want 20", bc[0])
	}
	for v := 1; v < 6; v++ {
		if math.Abs(bc[v]) > 1e-9 {
			t.Fatalf("leaf bc = %v, want 0", bc[v])
		}
	}
}

func TestBetweennessMatchesBruteForce(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(12, 24, 23))
	adj := gen.AdjacencyPattern(g)
	got := BetweennessCentrality(adj)
	want := bruteForceBetweenness(adj)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("bc[%d] = %v, want %v\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
}

// bruteForceBetweenness enumerates all shortest paths pair-by-pair.
func bruteForceBetweenness(adj *sparse.Matrix) []float64 {
	n := adj.Rows()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			paths := allShortestPaths(adj, s, t)
			if len(paths) == 0 {
				continue
			}
			counts := make([]float64, n)
			for _, p := range paths {
				for _, v := range p[1 : len(p)-1] {
					counts[v]++
				}
			}
			for v := 0; v < n; v++ {
				bc[v] += counts[v] / float64(len(paths))
			}
		}
	}
	return bc
}

func allShortestPaths(adj *sparse.Matrix, s, t int) [][]int {
	levels := BFSLevels(adj, s)
	if levels[t] < 0 {
		return nil
	}
	var out [][]int
	var walk func(v int, path []int)
	walk = func(v int, path []int) {
		if v == t {
			out = append(out, append(append([]int(nil), path...), v))
			return
		}
		cols, _ := adj.Row(v)
		for _, u := range cols {
			if levels[u] == levels[v]+1 && levels[u] <= levels[t] {
				walk(u, append(path, v))
			}
		}
	}
	walk(s, nil)
	return out
}
