package algo

import (
	"math"

	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file implements the paper's §III.A centrality metrics. All of
// them reduce to iterated sparse matrix-vector products, "which fits
// nicely within the scope of GraphBLAS".

// DegreeCentrality returns the out-degree of each vertex: a row
// reduction of the adjacency matrix with the plus monoid. Pass the
// transpose for in-degree.
func DegreeCentrality(adj *sparse.Matrix) []float64 {
	return sparse.ReduceRows(adj, semiring.PlusMonoid)
}

// PowerIterationResult reports a converged iterative centrality.
type PowerIterationResult struct {
	Scores     []float64
	Iterations int
	Converged  bool
}

// EigenvectorCentrality scores each vertex by its entry in the principal
// eigenvector of A, computed with the power method: x ← Ax, normalised
// each step, stopping when |xᵀₖ₊₁xₖ| / (‖xₖ₊₁‖‖xₖ‖) approaches 1 — the
// paper's stopping criterion.
func EigenvectorCentrality(adj *sparse.Matrix, tol float64, maxIter int) PowerIterationResult {
	n := adj.Rows()
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	// Paper: "a random positive vector x0 with entries between zero and
	// 1". Any positive vector works; a deterministic one keeps tests
	// stable while satisfying positivity.
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 + 0.5*float64(i%7)/7
	}
	normalize(x)
	for it := 1; it <= maxIter; it++ {
		// Iterate on (A + I)x rather than Ax: same eigenvectors, but the
		// shift makes the dominant eigenvalue unique on bipartite graphs
		// (e.g. stars, even cycles), where the raw power method
		// oscillates between ±λmax.
		next := sparse.SpMV(adj, x, semiring.PlusTimes)
		for i := range next {
			next[i] += x[i]
		}
		nn := norm(next)
		if nn == 0 {
			return PowerIterationResult{Scores: next, Iterations: it, Converged: false}
		}
		cos := math.Abs(dot(next, x)) / nn // x is unit length
		for i := range next {
			next[i] /= nn
		}
		x = next
		if 1-cos < tol {
			return PowerIterationResult{Scores: x, Iterations: it, Converged: true}
		}
	}
	return PowerIterationResult{Scores: x, Iterations: maxIter, Converged: false}
}

// KatzCentrality counts k-hop paths to each vertex for all k, penalised
// by αᵏ, via the paper's accumulation
//
//	d_{k+1} = A d_k;  x_{k+1} = x_k + αᵏ d_{k+1}
//
// starting from d0 = 1. α must satisfy α < 1/λmax for convergence.
func KatzCentrality(adj *sparse.Matrix, alpha float64, tol float64, maxIter int) PowerIterationResult {
	n := adj.Rows()
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	d := make([]float64, n)
	x := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	ak := alpha
	for it := 1; it <= maxIter; it++ {
		d = sparse.SpMV(adj, d, semiring.PlusTimes)
		delta := 0.0
		for i := range x {
			inc := ak * d[i]
			x[i] += inc
			delta += math.Abs(inc)
		}
		ak *= alpha
		if delta < tol {
			return PowerIterationResult{Scores: x, Iterations: it, Converged: true}
		}
	}
	return PowerIterationResult{Scores: x, Iterations: maxIter, Converged: false}
}

// PageRank ranks vertices by the stationary distribution of a random
// walk with jump probability alpha (the damping convention: jump with
// probability alpha, walk with 1−alpha, the paper's formulation of the
// principal eigenvector of α/N·1 + (1−α)AᵀD⁻¹).
func PageRank(adj *sparse.Matrix, alpha, tol float64, maxIter int) PowerIterationResult {
	n := adj.Rows()
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	// Column-stochastic walk matrix M = AᵀD⁻¹ built by scaling each row
	// of A by 1/outdegree, then transposing.
	outDeg := sparse.ReduceRows(adj, semiring.PlusMonoid)
	invDeg := make([]float64, n)
	for i, d := range outDeg {
		if d != 0 {
			invDeg[i] = 1 / d
		}
	}
	// Row-scale A by invDeg: D⁻¹A, then transpose → AᵀD⁻¹.
	scaled := sparse.SpGEMM(sparse.Diag(invDeg), adj, semiring.PlusTimes)
	m := sparse.Transpose(scaled)

	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	for it := 1; it <= maxIter; it++ {
		walked := sparse.SpMV(m, x, semiring.PlusTimes)
		// Dangling mass (vertices with no out-edges) plus the jump term
		// re-distribute uniformly; "multiplication by a matrix of 1s can
		// be emulated by summing the vector entries".
		dangling := 0.0
		for i := range x {
			if outDeg[i] == 0 {
				dangling += x[i]
			}
		}
		uniform := (alpha + (1-alpha)*dangling) / float64(n)
		delta := 0.0
		next := make([]float64, n)
		for i := range next {
			next[i] = uniform + (1-alpha)*walked[i]
			delta += math.Abs(next[i] - x[i])
		}
		x = next
		if delta < tol {
			return PowerIterationResult{Scores: x, Iterations: it, Converged: true}
		}
	}
	return PowerIterationResult{Scores: x, Iterations: maxIter, Converged: false}
}

// BetweennessCentrality computes exact betweenness via Brandes'
// algorithm in its linear-algebraic (batched BFS) form from Kepner &
// Gilbert [9]: a forward sweep accumulates shortest-path counts per
// level with SpMSpV; the backward sweep accumulates dependencies.
// Endpoints are excluded, and for undirected graphs the caller should
// halve the scores.
func BetweennessCentrality(adj *sparse.Matrix) []float64 {
	n := adj.Rows()
	bc := make([]float64, n)
	at := sparse.Transpose(adj)
	for s := 0; s < n; s++ {
		// Forward: BFS from s tracking sigma (path counts) per level.
		sigma := make([]float64, n)
		sigma[s] = 1
		depth := make([]int, n)
		for i := range depth {
			depth[i] = -1
		}
		depth[s] = 0
		frontier := sparse.NewVector(n, []int{s}, []float64{1}, semiring.PlusTimes)
		var levels []*sparse.Vector
		levels = append(levels, frontier)
		for d := 1; frontier.NNZ() > 0; d++ {
			expanded := sparse.SpMSpV(adj, frontier, semiring.PlusTimes)
			var idx []int
			var val []float64
			for k, j := range expanded.Idx {
				if depth[j] == -1 {
					depth[j] = d
					sigma[j] = expanded.Val[k]
					idx = append(idx, j)
					val = append(val, expanded.Val[k])
				} else if depth[j] == d {
					sigma[j] += expanded.Val[k]
				}
			}
			frontier = &sparse.Vector{N: n, Idx: idx, Val: val}
			if frontier.NNZ() > 0 {
				levels = append(levels, frontier)
			}
		}
		// Backward: delta accumulation from the deepest level.
		delta := make([]float64, n)
		for d := len(levels) - 1; d >= 1; d-- {
			// For w at depth d: each predecessor v at depth d−1 with an
			// edge v→w gains sigma[v]/sigma[w] · (1 + delta[w]).
			w := levels[d]
			contrib := make([]float64, len(w.Idx))
			for k, j := range w.Idx {
				contrib[k] = (1 + delta[j]) / sigma[j]
			}
			weighted := &sparse.Vector{N: n, Idx: w.Idx, Val: contrib}
			// Pull to predecessors: y = Aᵀ (as row-wise source) — using
			// SpMSpV over at gives y[v] = Σ_w at[w][v]... we need edges
			// v→w, i.e. adj[v][w] ≠ 0, so propagate through atᵀ = adj by
			// multiplying from the w side with at.
			back := sparse.SpMSpV(at, weighted, semiring.PlusTimes)
			for k, v := range back.Idx {
				if depth[v] == d-1 {
					delta[v] += sigma[v] * back.Val[k]
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != s {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
