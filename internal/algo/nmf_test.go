package algo

import (
	"math"
	"testing"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

func TestInverseDenseMatchesGaussJordan(t *testing.T) {
	rng := gen.NewRand(31)
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		m := sparse.NewDense(n, n)
		for i := 0; i < n; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.Float64() - 0.5
					m.Set(i, j, v)
					row += math.Abs(v)
				}
			}
			m.Set(i, i, row+1+rng.Float64())
		}
		inv, iters, ok := InverseDense(m, 1e-13, 500)
		if !ok {
			t.Fatalf("trial %d: Newton–Schulz did not converge", trial)
		}
		if iters <= 0 {
			t.Fatalf("bad iteration count")
		}
		oracle, okGJ := sparse.GaussJordanInverse(m)
		if !okGJ {
			t.Fatalf("oracle failed")
		}
		for i := range inv.Data {
			if math.Abs(inv.Data[i]-oracle.Data[i]) > 1e-8 {
				t.Fatalf("trial %d: inverse differs at %d: %v vs %v", trial, i, inv.Data[i], oracle.Data[i])
			}
		}
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	m := sparse.DenseFromRows([][]float64{
		{4, 1, 0},
		{1, 5, 2},
		{0, 2, 6},
	})
	inv, _, ok := InverseDense(m, 1e-14, 500)
	if !ok {
		t.Fatalf("no convergence")
	}
	prod := m.MulDense(inv)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10 {
				t.Fatalf("M·M⁻¹(%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInverseSparseWrapper(t *testing.T) {
	a := sparse.NewFromDense([][]float64{{2, 0}, {0, 4}})
	inv, _, ok := Inverse(a, 1e-14, 200)
	if !ok {
		t.Fatalf("no convergence")
	}
	if math.Abs(inv.At(0, 0)-0.5) > 1e-10 || math.Abs(inv.At(1, 1)-0.25) > 1e-10 {
		t.Fatalf("inverse wrong:\n%v", inv)
	}
}

func TestNMFReconstructsLowRankMatrix(t *testing.T) {
	// A = W₀H₀ with k=2 non-negative factors must be recoverable to a
	// small residual.
	w0 := sparse.DenseFromRows([][]float64{
		{1, 0}, {2, 0}, {0, 1}, {0, 3}, {1, 1},
	})
	h0 := sparse.DenseFromRows([][]float64{
		{1, 0, 2, 0},
		{0, 1, 0, 2},
	})
	a := w0.MulDense(h0).ToSparse()
	res := NMF(a, NMFConfig{Topics: 2, MaxIter: 500, Eps: 1e-9, Seed: 4})
	if res.Residual > 0.05*sparse.FrobeniusNorm(a) {
		t.Fatalf("NMF residual too high: %v (‖A‖=%v, %d iters)",
			res.Residual, sparse.FrobeniusNorm(a), res.Iterations)
	}
	// Factors stay non-negative.
	for _, v := range res.W.Data {
		if v < 0 {
			t.Fatalf("negative W entry %v", v)
		}
	}
	for _, v := range res.H.Data {
		if v < 0 {
			t.Fatalf("negative H entry %v", v)
		}
	}
}

// TestNMFTopicRecovery is the Fig. 3 experiment in miniature: plant five
// topic communities in a synthetic tweet corpus and verify NMF recovers
// them with high purity, assigning each topic's vocabulary to the right
// factor.
func TestNMFTopicRecovery(t *testing.T) {
	corpus := gen.NewTweetCorpus(gen.TweetCorpusConfig{NumTweets: 600, Seed: 11})
	m, docs, terms := corpus.A.Matrix()
	res := NMF(m, NMFConfig{Topics: corpus.NumTopics, MaxIter: 60, Eps: 1e-6, Seed: 1})
	assigned := AssignTopics(res.W)
	// Map doc labels back to planted truth.
	truth := make([]int, len(docs))
	for i, d := range docs {
		var id int
		for _, ch := range d[3:] {
			id = id*10 + int(ch-'0')
		}
		truth[i] = corpus.Topic[id]
	}
	purity := TopicPurity(assigned, truth, corpus.NumTopics)
	if purity < 0.9 {
		t.Fatalf("topic purity %.3f < 0.9 (Fig. 3 qualitative claim)", purity)
	}
	// Top terms of each recovered topic should come from one vocabulary.
	top := TopTerms(res.H, 5)
	for topic, ids := range top {
		votes := map[int]int{}
		for _, id := range ids {
			term := terms[id]
			for v, vocab := range gen.TopicVocabularies {
				for _, w := range vocab {
					if w == term {
						votes[v]++
					}
				}
			}
		}
		best := 0
		for _, c := range votes {
			if c > best {
				best = c
			}
		}
		if best < 3 {
			t.Fatalf("recovered topic %d has mixed top terms: %v", topic, votes)
		}
	}
}

func TestTopTermsOrdering(t *testing.T) {
	h := sparse.DenseFromRows([][]float64{
		{0.1, 0.9, 0.5},
		{0.7, 0.2, 0.3},
	})
	top := TopTerms(h, 2)
	if top[0][0] != 1 || top[0][1] != 2 {
		t.Fatalf("topic 0 top terms = %v", top[0])
	}
	if top[1][0] != 0 || top[1][1] != 2 {
		t.Fatalf("topic 1 top terms = %v", top[1])
	}
}

func TestAssignTopics(t *testing.T) {
	w := sparse.DenseFromRows([][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	})
	got := AssignTopics(w)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("assignments = %v", got)
	}
}

func TestTopicPurity(t *testing.T) {
	if p := TopicPurity([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}, 2); p != 1 {
		t.Fatalf("permuted perfect assignment purity = %v, want 1", p)
	}
	if p := TopicPurity([]int{0, 0, 0, 0}, []int{0, 1, 0, 1}, 2); p != 0.5 {
		t.Fatalf("collapsed purity = %v, want 0.5", p)
	}
}

func TestNMFPanicsWithoutTopics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NMF(sparse.Eye(3), NMFConfig{})
}

// The NMF pipeline exercises exactly the GraphBLAS kernel set the paper
// names for Algorithm 5: SpRef/SpAsgn (factor slicing), SpGEMM (the Gram
// and data products), Scale, SpEWiseX (clamping), and Reduce (norms).
// This test runs one ALS step expressed through those kernels directly
// and checks it agrees with the Dense fast path.
func TestNMFStepViaSparseKernels(t *testing.T) {
	a := sparse.NewFromDense([][]float64{
		{1, 0, 2},
		{0, 3, 0},
		{2, 0, 1},
		{0, 1, 1},
	})
	// Fixed W.
	wDense := sparse.DenseFromRows([][]float64{
		{1, 0.5}, {0.2, 1}, {0.8, 0.1}, {0.3, 0.9},
	})
	w := wDense.ToSparse()
	// Kernel path: H = (WᵀW)⁻¹ Wᵀ A with every product a SpGEMM.
	wtw := sparse.SpGEMM(sparse.Transpose(w), w, semiring.PlusTimes)
	wtwInv, _, ok := Inverse(wtw, 1e-14, 500)
	if !ok {
		t.Fatalf("inverse did not converge")
	}
	hKernel := sparse.SpGEMM(wtwInv, sparse.SpGEMM(sparse.Transpose(w), a, semiring.PlusTimes), semiring.PlusTimes)
	// Dense fast path.
	wtwD := wDense.T().MulDense(wDense)
	invD, _, _ := InverseDense(wtwD, 1e-14, 500)
	hDense := invD.MulDense(denseTMulSparse(wDense, a))
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(hKernel.At(i, j)-hDense.At(i, j)) > 1e-8 {
				t.Fatalf("kernel vs dense H(%d,%d): %v vs %v", i, j, hKernel.At(i, j), hDense.At(i, j))
			}
		}
	}
}
