package algo

import (
	"sort"

	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file implements the paper's Algorithm 2: Jaccard coefficients via
// the triangular split A = L + U, computing only the upper triangle
//
//	J = U² + triu(UUᵀ) + triu(UᵀU),   J ← J − diag(J),
//	J(i,j) ← J(i,j) / (d(i) + d(j) − J(i,j)),   J ← J + Jᵀ,
//
// plus the dense A²AND ./ A²OR formulation it is compared against
// (Table I: Similarity).

// Jaccard returns the matrix of Jaccard indices of an unweighted,
// undirected, zero-diagonal adjacency matrix A, using the paper's
// triangular algorithm. The result is symmetric with zero diagonal.
func Jaccard(adj *sparse.Matrix) *sparse.Matrix {
	d := sparse.ReduceRows(adj, semiring.PlusMonoid)
	U := sparse.Triu(adj, 1)
	Ut := sparse.Transpose(U)
	U2 := sparse.SpGEMM(U, U, semiring.PlusTimes)
	X := sparse.SpGEMM(U, Ut, semiring.PlusTimes) // UUᵀ
	Y := sparse.SpGEMM(Ut, U, semiring.PlusTimes) // UᵀU
	J := sparse.EWiseAdd(U2, sparse.Triu(X, 0), semiring.PlusTimes)
	J = sparse.EWiseAdd(J, sparse.Triu(Y, 0), semiring.PlusTimes)
	J = sparse.NoDiag(J)
	// J(i,j) = J(i,j) / (d(i)+d(j)−J(i,j)) on stored entries.
	J = sparse.Select(J, func(i, j int, v float64) bool { return v != 0 })
	J = divideByUnion(J, d)
	return sparse.EWiseAdd(J, sparse.Transpose(J), semiring.PlusTimes)
}

// divideByUnion maps each stored J(i,j) = |N(i)∩N(j)| to the Jaccard
// quotient |N(i)∩N(j)| / (d(i)+d(j)−|N(i)∩N(j)|).
func divideByUnion(J *sparse.Matrix, d []float64) *sparse.Matrix {
	var ts []sparse.Triple
	for _, t := range J.Triples() {
		union := d[t.Row] + d[t.Col] - t.Val
		if union > 0 {
			ts = append(ts, sparse.Triple{Row: t.Row, Col: t.Col, Val: t.Val / union})
		}
	}
	return sparse.NewFromTriples(J.Rows(), J.Cols(), ts, semiring.PlusTimes)
}

// JaccardDense computes Jaccard indices with the direct formulation
// J = A²_AND ./ A²_OR the paper gives before optimising: the numerator
// counts common neighbours (AND-multiply), the denominator neighbourhood
// unions (OR as d(i)+d(j)−intersection). It serves as the reference and
// the §IV ablation baseline.
func JaccardDense(adj *sparse.Matrix) *sparse.Matrix {
	n := adj.Rows()
	d := sparse.ReduceRows(adj, semiring.PlusMonoid)
	// A²_AND: common-neighbour counts via plus.and on the 0/1 pattern.
	inter := sparse.SpGEMM(adj, adj, semiring.PlusAnd)
	var ts []sparse.Triple
	for _, t := range inter.Triples() {
		if t.Row == t.Col {
			continue
		}
		union := d[t.Row] + d[t.Col] - t.Val
		if union > 0 {
			ts = append(ts, sparse.Triple{Row: t.Row, Col: t.Col, Val: t.Val / union})
		}
	}
	return sparse.NewFromTriples(n, n, ts, semiring.PlusTimes)
}

// JaccardPair returns the Jaccard coefficient of two vertices.
func JaccardPair(adj *sparse.Matrix, u, v int) float64 {
	uc, _ := adj.Row(u)
	vc, _ := adj.Row(v)
	i, j, inter := 0, 0, 0
	for i < len(uc) && j < len(vc) {
		switch {
		case uc[i] < vc[j]:
			i++
		case vc[j] < uc[i]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(uc) + len(vc) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// LinkPrediction scores non-adjacent vertex pairs by Jaccard similarity
// and returns the topK highest-scoring candidate links — the paper's
// §III.C motivation ("computing vertex similarity is important in
// applications such as link prediction"). (Table I: Prediction.)
type PredictedLink struct {
	U, V  int
	Score float64
}

// LinkPrediction returns the topK non-edges with the highest Jaccard
// coefficients.
func LinkPrediction(adj *sparse.Matrix, topK int) []PredictedLink {
	J := Jaccard(adj)
	var cands []PredictedLink
	for _, t := range sparse.Triu(J, 1).Triples() {
		if adj.At(t.Row, t.Col) == 0 && t.Val > 0 {
			cands = append(cands, PredictedLink{U: t.Row, V: t.Col, Score: t.Val})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].U != cands[j].U {
			return cands[i].U < cands[j].U
		}
		return cands[i].V < cands[j].V
	})
	if topK < len(cands) {
		cands = cands[:topK]
	}
	return cands
}

// NeighborMatchingScore returns a similarity score in [0,1] between two
// graphs on the same vertex set: the mean Jaccard similarity of
// corresponding vertices' neighbourhoods (a light-weight member of
// Table I's Similarity class alongside full graph isomorphism).
func NeighborMatchingScore(a, b *sparse.Matrix) float64 {
	if a.Rows() != b.Rows() {
		panic("algo: NeighborMatchingScore needs equal vertex sets")
	}
	n := a.Rows()
	if n == 0 {
		return 1
	}
	total := 0.0
	for v := 0; v < n; v++ {
		ac, _ := a.Row(v)
		bc, _ := b.Row(v)
		i, j, inter := 0, 0, 0
		for i < len(ac) && j < len(bc) {
			switch {
			case ac[i] < bc[j]:
				i++
			case bc[j] < ac[i]:
				j++
			default:
				inter++
				i++
				j++
			}
		}
		union := len(ac) + len(bc) - inter
		if union == 0 {
			total++ // both isolated: identical neighbourhoods
		} else {
			total += float64(inter) / float64(union)
		}
	}
	return total / float64(n)
}
