package algo

import (
	"math"

	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file implements the centrality metrics the paper defers:
// "Other metrics, such as closeness centrality, will be the subject of
// future work" (§III.A). Closeness, harmonic closeness, HITS, and local
// clustering coefficients all reduce to the same kernel set.

// ClosenessCentrality returns, per vertex, (n_reachable − 1) / Σ d(v,u):
// the reciprocal mean shortest-path distance to the vertices it can
// reach (the Wasserman–Faust normalisation handles disconnected
// graphs). Unweighted distances via BFS frontier expansion.
func ClosenessCentrality(adj *sparse.Matrix) []float64 {
	n := adj.Rows()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		levels := BFSLevels(adj, v)
		sum, reach := 0.0, 0
		for _, l := range levels {
			if l > 0 {
				sum += float64(l)
				reach++
			}
		}
		if sum > 0 {
			// Scale by the reachable fraction so vertices in large
			// components rank above vertices in tiny ones.
			out[v] = (float64(reach) / float64(n-1)) * (float64(reach) / sum)
		}
	}
	return out
}

// HarmonicCentrality returns Σ_u 1/d(v,u), which is well defined on
// disconnected graphs without normalisation tricks.
func HarmonicCentrality(adj *sparse.Matrix) []float64 {
	n := adj.Rows()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		levels := BFSLevels(adj, v)
		for _, l := range levels {
			if l > 0 {
				out[v] += 1 / float64(l)
			}
		}
	}
	return out
}

// ClosenessWeighted is closeness over weighted distances (min.plus
// adjacency), one Bellman–Ford per vertex.
func ClosenessWeighted(adj *sparse.Matrix) []float64 {
	n := adj.Rows()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		dist, _ := BellmanFord(adj, v)
		sum, reach := 0.0, 0
		for u, d := range dist {
			if u != v && !math.IsInf(d, 1) {
				sum += d
				reach++
			}
		}
		if sum > 0 {
			out[v] = (float64(reach) / float64(n-1)) * (float64(reach) / sum)
		}
	}
	return out
}

// HITSResult carries hub and authority scores.
type HITSResult struct {
	Hubs        []float64
	Authorities []float64
	Iterations  int
	Converged   bool
}

// HITS computes Kleinberg's hubs and authorities by alternating
// a = Aᵀh, h = Aa with normalisation — two SpMVs per round.
func HITS(adj *sparse.Matrix, tol float64, maxIter int) HITSResult {
	n := adj.Rows()
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	at := sparse.Transpose(adj)
	h := make([]float64, n)
	for i := range h {
		h[i] = 1
	}
	normalize(h)
	var a []float64
	for it := 1; it <= maxIter; it++ {
		a = sparse.SpMV(at, h, semiring.PlusTimes)
		normalize(a)
		nextH := sparse.SpMV(adj, a, semiring.PlusTimes)
		normalize(nextH)
		delta := 0.0
		for i := range h {
			delta += math.Abs(nextH[i] - h[i])
		}
		h = nextH
		if delta < tol {
			return HITSResult{Hubs: h, Authorities: a, Iterations: it, Converged: true}
		}
	}
	return HITSResult{Hubs: h, Authorities: a, Iterations: maxIter, Converged: false}
}

// LocalClusteringCoefficient returns, per vertex, the fraction of its
// neighbour pairs that are themselves connected: 2·tri(v) / (d(v)(d(v)−1)).
// tri(v) comes from the diagonal of A³ computed sparsely as
// Σ_j (A ∘ A²)(v, j) / 2.
func LocalClusteringCoefficient(adj *sparse.Matrix) []float64 {
	a2 := sparse.SpGEMM(adj, adj, semiring.PlusTimes)
	wedgeHits := sparse.EWiseMult(adj, a2, semiring.PlusTimes)
	triTwice := sparse.ReduceRows(wedgeHits, semiring.PlusMonoid) // 2·tri(v)
	deg := sparse.ReduceRows(adj, semiring.PlusMonoid)
	out := make([]float64, adj.Rows())
	for v := range out {
		d := deg[v]
		if d >= 2 {
			out[v] = triTwice[v] / (d * (d - 1))
		}
	}
	return out
}

// GlobalClusteringCoefficient is 3·triangles / open+closed wedges.
func GlobalClusteringCoefficient(adj *sparse.Matrix) float64 {
	tri := TriangleCount(adj)
	deg := sparse.ReduceRows(adj, semiring.PlusMonoid)
	wedges := 0.0
	for _, d := range deg {
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * tri / wedges
}
