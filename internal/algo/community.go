package algo

import (
	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// Community detection beyond NMF (Table I lists topic modeling, NMF,
// PCA, SVD as examples of the class): label propagation, the standard
// lightweight community detector, expressed as an iterated masked SpMV
// — each vertex adopts its neighbourhood's plurality label — plus the
// modularity quality score used to evaluate partitions.

// LabelPropagation partitions the graph by iterative plurality voting:
// every vertex adopts the most common label among its neighbours
// (ties broken toward the smallest label for determinism), until no
// label changes or maxRounds is hit. Returns the community label of
// each vertex. Deterministic: vertices update synchronously.
func LabelPropagation(adj *sparse.Matrix, maxRounds int, seed uint64) []int {
	n := adj.Rows()
	if maxRounds <= 0 {
		maxRounds = 100
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	// Deterministic shuffled visit order decorrelates label ids from
	// vertex ids without sacrificing reproducibility.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := gen.NewRand(seed + 1)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	counts := map[int]float64{}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, v := range order {
			cols, vals := adj.Row(v)
			if len(cols) == 0 {
				continue
			}
			clear(counts)
			for i, u := range cols {
				counts[labels[u]] += vals[i]
			}
			best, bestCount := labels[v], counts[labels[v]]
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

// Modularity scores a partition of an undirected graph: the fraction of
// edges inside communities minus the expectation under the degree-
// preserving null model. Range roughly [−1/2, 1); higher is better.
func Modularity(adj *sparse.Matrix, labels []int) float64 {
	deg := sparse.ReduceRows(adj, semiring.PlusMonoid)
	twoM := 0.0
	for _, d := range deg {
		twoM += d
	}
	if twoM == 0 {
		return 0
	}
	inside := 0.0
	for _, t := range adj.Triples() {
		if labels[t.Row] == labels[t.Col] {
			inside += t.Val
		}
	}
	// Σ_c (deg_c / 2m)².
	commDeg := map[int]float64{}
	for v, d := range deg {
		commDeg[labels[v]] += d
	}
	expected := 0.0
	for _, d := range commDeg {
		expected += (d / twoM) * (d / twoM)
	}
	return inside/twoM - expected
}

// CommunityCount returns the number of distinct labels.
func CommunityCount(labels []int) int {
	set := map[int]bool{}
	for _, l := range labels {
		set[l] = true
	}
	return len(set)
}
