package algo

import (
	"math"
	"sort"
	"testing"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

func TestTruncatedSVDDiagonal(t *testing.T) {
	// Diagonal matrix: singular values are the |diagonal| sorted desc.
	a := sparse.Diag([]float64{3, 7, 1, 5})
	res := TruncatedSVD(a, 4, 1e-12, 2000)
	want := []float64{7, 5, 3, 1}
	for i, w := range want {
		if math.Abs(res.S[i]-w) > 1e-6 {
			t.Fatalf("σ%d = %v, want %v (all %v)", i, res.S[i], w, res.S)
		}
	}
}

func TestTruncatedSVDReconstruction(t *testing.T) {
	// Full-rank k = min(m,n) SVD must reconstruct A.
	a := sparse.NewFromDense([][]float64{
		{2, 0, 1},
		{0, 3, 0},
		{1, 0, 2},
		{0, 1, 0},
	})
	res := TruncatedSVD(a, 3, 1e-13, 5000)
	// A ≈ U Σ Vᵀ.
	recon := sparse.NewDense(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for c := 0; c < 3; c++ {
				s += res.U.At(i, c) * res.S[c] * res.V.At(j, c)
			}
			recon.Set(i, j, s)
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(recon.At(i, j)-a.At(i, j)) > 1e-5 {
				t.Fatalf("reconstruction (%d,%d): %v vs %v", i, j, recon.At(i, j), a.At(i, j))
			}
		}
	}
	// Orthonormal right vectors.
	for c1 := 0; c1 < 3; c1++ {
		for c2 := 0; c2 < 3; c2++ {
			d := 0.0
			for i := 0; i < 3; i++ {
				d += res.V.At(i, c1) * res.V.At(i, c2)
			}
			want := 0.0
			if c1 == c2 {
				want = 1
			}
			if math.Abs(d-want) > 1e-5 {
				t.Fatalf("V columns not orthonormal: <%d,%d> = %v", c1, c2, d)
			}
		}
	}
}

func TestTruncatedSVDLowRank(t *testing.T) {
	// Rank-1 matrix: one big singular value, rest ~0.
	var ts []sparse.Triple
	u := []float64{1, 2, 3}
	v := []float64{4, 0, 5, 6}
	for i := range u {
		for j := range v {
			if u[i]*v[j] != 0 {
				ts = append(ts, sparse.Triple{Row: i, Col: j, Val: u[i] * v[j]})
			}
		}
	}
	a := sparse.NewFromTriples(3, 4, ts, semiring.PlusTimes)
	res := TruncatedSVD(a, 2, 1e-12, 2000)
	wantSigma := norm(u) * norm(v)
	if math.Abs(res.S[0]-wantSigma) > 1e-6 {
		t.Fatalf("σ1 = %v, want %v", res.S[0], wantSigma)
	}
	if res.S[1] > 1e-6 {
		t.Fatalf("rank-1 matrix has σ2 = %v", res.S[1])
	}
}

func TestPCATwoClusters(t *testing.T) {
	// Points along the x-axis in two clusters: first component ≈ e_x.
	rows := [][]float64{
		{10, 0.1}, {11, -0.1}, {10.5, 0},
		{-10, 0.1}, {-11, 0}, {-10.5, -0.1},
	}
	a := sparse.NewFromDense(rows)
	comps, vars := PCA(a, 2, 1e-12, 5000)
	// First PC dominated by x.
	if math.Abs(comps.At(0, 0)) < 0.99 {
		t.Fatalf("first PC should align with x-axis: %v", comps.At(0, 0))
	}
	if vars[0] < 50*vars[1] {
		t.Fatalf("variance ratio too small: %v", vars)
	}
}

func TestVertexNominationFindsCommunity(t *testing.T) {
	// Two cliques joined by one bridge edge; cues in clique A must
	// nominate the remaining clique-A vertices above all of clique B.
	g := gen.Barbell(6, 0) // vertices 0..5 clique A, 6..11 clique B
	adj := gen.AdjacencyPattern(gen.Dedup(g))
	cues := []int{0, 1}
	scores := VertexNomination(adj, cues, 0.15, 500)
	type vs struct {
		v int
		s float64
	}
	var ranked []vs
	for v, s := range scores {
		if v != 0 && v != 1 { // exclude the cues themselves
			ranked = append(ranked, vs{v, s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	// The top 4 nominations must be the rest of clique A {2,3,4,5}.
	top := map[int]bool{}
	for _, r := range ranked[:4] {
		top[r.v] = true
	}
	for _, v := range []int{2, 3, 4, 5} {
		if !top[v] {
			t.Fatalf("clique member %d not nominated; ranking %v", v, ranked[:6])
		}
	}
}

func TestVertexNominationMassConcentration(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(40, 80, 17))
	adj := gen.AdjacencyPattern(g)
	scores := VertexNomination(adj, []int{3}, 0.2, 500)
	sum := 0.0
	best, bestV := -1.0, -1
	for v, s := range scores {
		sum += s
		if s > best {
			best, bestV = s, v
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("nomination scores sum to %v", sum)
	}
	if bestV != 3 {
		t.Fatalf("cue should hold the most mass, got vertex %d", bestV)
	}
}
