package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// TestKTrussPaperExample reproduces the §III.B worked example on the
// Fig. 1 graph step by step: E, A = EᵀE − diag(d), R = EA, the support
// vector s, and the 3-truss fixed point after removing edge 6.
func TestKTrussPaperExample(t *testing.T) {
	E := gen.Incidence(gen.PaperGraph())

	// A = EᵀE − diag(EᵀE) must equal the printed adjacency matrix.
	A := sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(E), E, semiring.PlusTimes))
	wantA := [][]float64{
		{0, 1, 1, 1, 0},
		{1, 0, 1, 0, 1},
		{1, 1, 0, 1, 0},
		{1, 0, 1, 0, 0},
		{0, 1, 0, 0, 0},
	}
	checkDense(t, "A", A, wantA)

	// Gram diagonal = degree vector d = sum(E) = [3 3 3 2 1].
	gram := sparse.SpGEMM(sparse.Transpose(E), E, semiring.PlusTimes)
	d := sparse.ReduceCols(E, semiring.PlusMonoid)
	wantD := []float64{3, 3, 3, 2, 1}
	for i, w := range wantD {
		if d[i] != w || gram.At(i, i) != w {
			t.Fatalf("degree[%d] = %v / gram %v, want %v", i, d[i], gram.At(i, i), w)
		}
	}

	// R = EA as printed in the paper.
	R := sparse.SpGEMM(E, A, semiring.PlusTimes)
	wantR := [][]float64{
		{1, 1, 2, 1, 1},
		{2, 1, 1, 1, 1},
		{1, 1, 2, 1, 0},
		{2, 1, 1, 1, 0},
		{1, 2, 1, 2, 0},
		{1, 1, 1, 0, 1},
	}
	checkDense(t, "R", R, wantR)

	// s = (R == 2)·1. (The paper's printed s omits one row — a typo; the
	// indicator matrix it prints yields [1 1 1 1 2 0].)
	s := supportFromR(R)
	wantS := []float64{1, 1, 1, 1, 2, 0}
	for i, w := range wantS {
		if s[i] != w {
			t.Fatalf("s[%d] = %v, want %v (s=%v)", i, s[i], w, s)
		}
	}

	// 3-truss: edge 6 (index 5) is removed; the rest survive with the
	// updated R matching the paper's final matrix.
	truss := KTrussEdge(E, 3)
	if truss.Rows() != 5 {
		t.Fatalf("3-truss should keep 5 edges, got %d", truss.Rows())
	}
	wantE3 := [][]float64{
		{1, 1, 0, 0, 0},
		{0, 1, 1, 0, 0},
		{1, 0, 0, 1, 0},
		{0, 0, 1, 1, 0},
		{1, 0, 1, 0, 0},
	}
	checkDense(t, "3-truss incidence", truss, wantE3)
}

// The paper's updated R after removing edge 6.
func TestKTrussPaperExampleUpdatedR(t *testing.T) {
	E := gen.Incidence(gen.PaperGraph())
	A := sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(E), E, semiring.PlusTimes))
	R := sparse.SpGEMM(E, A, semiring.PlusTimes)
	x := []int{5}
	xc := sparse.Complement(x, 6)
	Ex := sparse.SpRefRows(E, x)
	E2 := sparse.SpRefRows(E, xc)
	R2 := sparse.SpRefRows(R, xc)
	update := sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(Ex), Ex, semiring.PlusTimes))
	R2 = sparse.EWiseAdd(R2, sparse.Scale(sparse.SpGEMM(E2, update, semiring.PlusTimes), -1), semiring.PlusTimes)
	want := [][]float64{
		{1, 1, 2, 1, 0},
		{2, 1, 1, 1, 0},
		{1, 1, 2, 1, 0},
		{2, 1, 1, 1, 0},
		{1, 2, 1, 2, 0},
	}
	checkDense(t, "updated R", R2, want)
	// Support unchanged ⇒ fixed point: the graph is a 3-truss.
	s := supportFromR(R2)
	for i, v := range s {
		if v < 1 {
			t.Fatalf("edge %d lost support: %v", i, v)
		}
	}
}

func checkDense(t *testing.T, name string, m *sparse.Matrix, want [][]float64) {
	t.Helper()
	d := m.Dense()
	if len(d) != len(want) {
		t.Fatalf("%s rows = %d, want %d", name, len(d), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("%s(%d,%d) = %v, want %v\ngot:\n%v", name, i, j, d[i][j], want[i][j], m)
			}
		}
	}
}

func TestKTrussCliqueSurvives(t *testing.T) {
	// K5 is a 5-truss (every edge in 3 triangles): it survives k=3,4,5
	// and vanishes at k=6.
	g := gen.Complete(5)
	E := gen.Incidence(g)
	for k := 3; k <= 5; k++ {
		truss := KTrussEdge(E, k)
		if truss.Rows() != 10 {
			t.Fatalf("K5 should fully survive k=%d, got %d edges", k, truss.Rows())
		}
	}
	if truss := KTrussEdge(E, 6); truss.Rows() != 0 {
		t.Fatalf("K5 has no 6-truss, got %d edges", truss.Rows())
	}
}

func TestKTrussPathIsTriangleFree(t *testing.T) {
	E := gen.Incidence(gen.Path(10))
	if truss := KTrussEdge(E, 3); truss.Rows() != 0 {
		t.Fatalf("path has no 3-truss, got %d edges", truss.Rows())
	}
}

func TestKTrussK2ReturnsEverything(t *testing.T) {
	E := gen.Incidence(gen.Path(5))
	if truss := KTrussEdge(E, 2); truss.Rows() != 4 {
		t.Fatalf("2-truss must keep all edges")
	}
}

func TestKTrussBarbell(t *testing.T) {
	// Two K5s joined by a path: the 4-truss is exactly the two cliques;
	// the bridge dies.
	g := gen.Barbell(5, 2)
	E := gen.Incidence(g)
	truss := KTrussEdge(E, 4)
	if truss.Rows() != 20 { // 2 × C(5,2)
		t.Fatalf("barbell 4-truss edges = %d, want 20", truss.Rows())
	}
}

func TestKTrussAdjMatchesEdgeForm(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(30, 120, 11))
	adj := gen.AdjacencyPattern(g)
	trussAdj := KTrussAdj(adj, 3)
	// Reference: brute-force iterative peeling on the adjacency matrix.
	want := bruteForceKTrussAdj(adj, 3)
	if !sparse.Equal(trussAdj, want) {
		t.Fatalf("KTrussAdj differs from brute force")
	}
}

// bruteForceKTrussAdj peels edges with < k−2 triangles until fixpoint.
func bruteForceKTrussAdj(adj *sparse.Matrix, k int) *sparse.Matrix {
	cur := adj.Clone()
	for {
		a2 := sparse.SpGEMM(cur, cur, semiring.PlusTimes)
		removed := false
		var keep []sparse.Triple
		for _, t := range cur.Triples() {
			if a2.At(t.Row, t.Col) >= float64(k-2) {
				keep = append(keep, t)
			} else {
				removed = true
			}
		}
		cur = sparse.NewFromTriples(adj.Rows(), adj.Cols(), keep, semiring.PlusTimes)
		if !removed {
			return cur
		}
	}
}

func TestEdgeSupportStrategiesAgree(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := gen.Dedup(gen.ErdosRenyi(25, 80, seed))
		E := gen.Incidence(g)
		a := EdgeSupport(E)
		b := EdgeSupportFused(E)
		if len(a) != len(b) {
			t.Fatalf("length mismatch")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d edge %d: SpGEMM support %v, fused %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestTrussDecomposition(t *testing.T) {
	// Barbell(4,1): K4 edges are 4-truss, the bridge edges only 2-truss.
	g := gen.Barbell(4, 1)
	E := gen.Incidence(g)
	dec := TrussDecomposition(E)
	adjToK := map[int]int{}
	for i, e := range g.Edges {
		_ = e
		adjToK[i] = dec[i]
	}
	// Count edges by truss number: 12 clique edges at k=4, 2 bridge
	// edges at k=2.
	counts := map[int]int{}
	for _, k := range dec {
		counts[k]++
	}
	if counts[4] != 12 || counts[2] != 2 {
		t.Fatalf("truss decomposition counts = %v", counts)
	}
}

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		g    gen.Graph
		want float64
	}{
		{gen.Complete(4), 4},
		{gen.Complete(5), 10},
		{gen.Path(6), 0},
		{gen.Cycle(3), 1},
		{gen.PaperGraph(), 2}, // triangles {v1,v2,v3} and {v1,v3,v4}
	}
	for _, c := range cases {
		if got := TriangleCount(gen.AdjacencyPattern(c.g)); got != c.want {
			t.Fatalf("triangles = %v, want %v", got, c.want)
		}
	}
}

// Property: k-truss output is a fixed point — every surviving edge has
// support ≥ k−2 — and is a subset of the input edges.
func TestQuickKTrussFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		m := rng.Intn(n * (n - 1) / 2)
		g := gen.Dedup(gen.ErdosRenyi(n, m, uint64(seed)))
		E := gen.Incidence(g)
		k := 3 + rng.Intn(3)
		truss := KTrussEdge(E, k)
		if truss.Rows() == 0 {
			return true
		}
		s := EdgeSupport(truss)
		for _, v := range s {
			if v < float64(k-2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of edge supports = 3 × triangle count.
func TestQuickSupportTriangleIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := gen.Dedup(gen.ErdosRenyi(n, m, uint64(seed)+1000))
		if len(g.Edges) == 0 {
			return true
		}
		E := gen.Incidence(g)
		s := EdgeSupport(E)
		total := 0.0
		for _, v := range s {
			total += v
		}
		return total == 3*TriangleCount(gen.AdjacencyPattern(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
