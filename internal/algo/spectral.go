package algo

import (
	"math"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file covers the remaining named members of the paper's Table I:
// PCA / SVD under Community Detection ("Principle Component Analysis,
// Singular Value Decomposition") and vertex nomination under Subgraph
// Detection ("ranking vertices based on how likely they are to be
// associated with a subset of 'cue' vertices" [10]). Both reduce to the
// same iterated-SpMV machinery as §III.A.

// SVDResult holds a truncated singular value decomposition A ≈ UΣVᵀ.
type SVDResult struct {
	U          *sparse.Dense // m×k left singular vectors (columns)
	S          []float64     // k singular values, descending
	V          *sparse.Dense // n×k right singular vectors (columns)
	Iterations int
}

// TruncatedSVD computes the top-k singular triplets of a sparse matrix
// by power iteration with deflation: v ← normalised AᵀAv, σ = ‖Av‖,
// u = Av/σ, then the found component is projected out of subsequent
// iterations. Every product is an SpMV (or its transpose), so the
// computation stays within the GraphBLAS kernel set.
func TruncatedSVD(a *sparse.Matrix, k int, tol float64, maxIter int) SVDResult {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	m, n := a.Rows(), a.Cols()
	if k > n {
		k = n
	}
	if k > m {
		k = m
	}
	at := sparse.Transpose(a)
	U := sparse.NewDense(m, k)
	V := sparse.NewDense(n, k)
	S := make([]float64, k)
	totalIters := 0

	// prevV[c] holds already-found right singular vectors for deflation.
	var found [][]float64
	rng := gen.NewRand(12345)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		deflate(v, found)
		normalize(v)
		exhausted := false
		for it := 0; it < maxIter; it++ {
			totalIters++
			// w = Av; v' = Aᵀw.
			w := sparse.SpMV(a, v, semiring.PlusTimes)
			next := sparse.SpMV(at, w, semiring.PlusTimes)
			preNN := norm(next)
			deflate(next, found)
			nn := norm(next)
			// If deflation annihilates the iterate (relative to its
			// pre-deflation size), A has numerical rank < c+1: the
			// surviving "direction" is rounding noise and must not be
			// re-normalised into a fake singular vector.
			if nn == 0 || nn <= 1e-9*preNN || preNN == 0 {
				exhausted = true
				break
			}
			for i := range next {
				next[i] /= nn
			}
			delta := 0.0
			for i := range next {
				delta += math.Abs(math.Abs(next[i]) - math.Abs(v[i]))
			}
			v = next
			if delta < tol {
				break
			}
		}
		if exhausted {
			// Remaining singular values are 0; leave U/V columns zero.
			break
		}
		// u = Av/σ.
		u := sparse.SpMV(a, v, semiring.PlusTimes)
		un := norm(u)
		if un > 0 {
			for i := range u {
				u[i] /= un
			}
		}
		S[c] = un
		for i := 0; i < m; i++ {
			U.Set(i, c, u[i])
		}
		for i := 0; i < n; i++ {
			V.Set(i, c, v[i])
		}
		found = append(found, append([]float64(nil), v...))
	}
	return SVDResult{U: U, S: S, V: V, Iterations: totalIters}
}

// deflate removes the components of x along each unit vector in basis.
func deflate(x []float64, basis [][]float64) {
	for _, b := range basis {
		d := dot(x, b)
		for i := range x {
			x[i] -= d * b[i]
		}
	}
}

// PCA computes the top-k principal components of the rows of A (each
// row an observation) without densifying: the covariance action
// Cx = AᵀAx/m − μ(μᵀx) uses one SpMV pair plus a rank-one mean
// correction. Returns the components (n×k) and their variances.
func PCA(a *sparse.Matrix, k int, tol float64, maxIter int) (*sparse.Dense, []float64) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	m, n := a.Rows(), a.Cols()
	if k > n {
		k = n
	}
	mean := sparse.ReduceCols(a, semiring.PlusMonoid)
	for i := range mean {
		mean[i] /= float64(m)
	}
	at := sparse.Transpose(a)
	apply := func(x []float64) []float64 {
		ax := sparse.SpMV(a, x, semiring.PlusTimes)
		atax := sparse.SpMV(at, ax, semiring.PlusTimes)
		mx := dot(mean, x)
		out := make([]float64, n)
		for i := range out {
			out[i] = atax[i]/float64(m) - mean[i]*mx
		}
		return out
	}
	comps := sparse.NewDense(n, k)
	vars := make([]float64, k)
	var found [][]float64
	rng := gen.NewRand(999)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		deflate(v, found)
		normalize(v)
		lambda := 0.0
		for it := 0; it < maxIter; it++ {
			next := apply(v)
			preNN := norm(next)
			deflate(next, found)
			nn := norm(next)
			if nn == 0 || nn <= 1e-9*preNN || preNN == 0 {
				lambda = 0
				break
			}
			for i := range next {
				next[i] /= nn
			}
			delta := 0.0
			for i := range next {
				delta += math.Abs(math.Abs(next[i]) - math.Abs(v[i]))
			}
			v = next
			lambda = nn
			if delta < tol {
				break
			}
		}
		if lambda == 0 {
			break
		}
		vars[c] = lambda
		for i := 0; i < n; i++ {
			comps.Set(i, c, v[i])
		}
		found = append(found, append([]float64(nil), v...))
	}
	return comps, vars
}

// VertexNomination ranks vertices by affinity to a set of cue vertices
// using personalised PageRank: the random walk teleports back to the
// cues instead of the uniform distribution, so stationary mass
// concentrates around them. Cue vertices themselves are ranked first by
// construction; callers typically inspect the top non-cue vertices.
func VertexNomination(adj *sparse.Matrix, cues []int, alpha float64, maxIter int) []float64 {
	n := adj.Rows()
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.15
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	restart := make([]float64, n)
	for _, c := range cues {
		restart[c] = 1 / float64(len(cues))
	}
	outDeg := sparse.ReduceRows(adj, semiring.PlusMonoid)
	invDeg := make([]float64, n)
	for i, d := range outDeg {
		if d != 0 {
			invDeg[i] = 1 / d
		}
	}
	mt := sparse.Transpose(sparse.SpGEMM(sparse.Diag(invDeg), adj, semiring.PlusTimes))
	x := append([]float64(nil), restart...)
	for it := 0; it < maxIter; it++ {
		walked := sparse.SpMV(mt, x, semiring.PlusTimes)
		dangling := 0.0
		for i := range x {
			if outDeg[i] == 0 {
				dangling += x[i]
			}
		}
		delta := 0.0
		next := make([]float64, n)
		for i := range next {
			next[i] = (alpha+(1-alpha)*dangling)*restart[i] + (1-alpha)*walked[i]
			delta += math.Abs(next[i] - x[i])
		}
		x = next
		if delta < 1e-12 {
			break
		}
	}
	return x
}
