package algo

import (
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file implements the paper's Algorithm 1: k-truss subgraph
// computation on the unoriented incidence matrix, with the identity
// A = EᵀE − diag(EᵀE) and the incremental support update
// R ← R(xᶜ,:) − E[EₓᵀEₓ − diag(dₓ)] that avoids recomputing the full
// product after edge removal. (Table I: Subgraph Detection & Vertex
// Nomination.)

// KTrussEdge returns the incidence matrix of the k-truss of the graph
// whose unoriented incidence matrix is E: the maximal subgraph in which
// every edge is supported by at least k−2 triangles. The row set of the
// result is the subset of surviving edges (rows are renumbered densely);
// the column (vertex) space is preserved.
func KTrussEdge(E *sparse.Matrix, k int) *sparse.Matrix {
	if k < 3 {
		// Every graph is a 2-truss; nothing to remove.
		return E.Clone()
	}
	// d = sum(E) and A = EᵀE − diag(d). Because diag(EᵀE) = diag(d)
	// exactly (the diagonal of the Gram matrix is the degree vector),
	// the subtraction is just removing the diagonal.
	Et := sparse.Transpose(E)
	A := sparse.NoDiag(sparse.SpGEMM(Et, E, semiring.PlusTimes))
	// R = EA.
	R := sparse.SpGEMM(E, A, semiring.PlusTimes)
	s := supportFromR(R)
	x := sparse.Find(s, func(v float64) bool { return v < float64(k-2) })
	for len(x) > 0 && E.Rows() > 0 {
		xc := sparse.Complement(x, E.Rows())
		Ex := sparse.SpRefRows(E, x)
		E = sparse.SpRefRows(E, xc)
		R = sparse.SpRefRows(R, xc)
		// R = R − E[EₓᵀEₓ − diag(dₓ)]; as above, the bracket is the
		// off-diagonal part of the removed edges' Gram matrix.
		ExT := sparse.Transpose(Ex)
		update := sparse.NoDiag(sparse.SpGEMM(ExT, Ex, semiring.PlusTimes))
		R = sparse.EWiseAdd(R, sparse.Scale(sparse.SpGEMM(E, update, semiring.PlusTimes), -1), semiring.PlusTimes)
		s = supportFromR(R)
		x = sparse.Find(s, func(v float64) bool { return v < float64(k-2) })
	}
	return E
}

// supportFromR computes s = (R == 2)·1: the per-edge triangle support,
// from the overlap matrix R = EA.
func supportFromR(R *sparse.Matrix) []float64 {
	ind := sparse.Apply(R, semiring.EqualsIndicator(2))
	return sparse.ReduceRows(ind, semiring.PlusMonoid)
}

// EdgeSupport returns each edge's triangle support, computed via the
// full SpGEMM R = EA as the paper presents it.
func EdgeSupport(E *sparse.Matrix) []float64 {
	A := sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(E), E, semiring.PlusTimes))
	return supportFromR(sparse.SpGEMM(E, A, semiring.PlusTimes))
}

// EdgeSupportFused computes the same support without materialising R:
// the "== 2" indicator is fused into the multiply so only matching
// accumulator cells are counted. This is the optimisation the paper's
// §IV discussion proposes (replacing + with an AND-like combine), which
// it notes violates the semiring axioms — hence a dedicated fused kernel
// rather than a semiring swap.
func EdgeSupportFused(E *sparse.Matrix) []float64 {
	A := sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(E), E, semiring.PlusTimes))
	m := E.Rows()
	out := make([]float64, m)
	accum := make([]float64, A.Cols())
	touched := make([]int, 0, 64)
	for i := 0; i < m; i++ {
		cols, vals := E.Row(i)
		for t, j := range cols {
			av := vals[t]
			acols, avals := A.Row(j)
			for u, c := range acols {
				if accum[c] == 0 {
					touched = append(touched, c)
				}
				accum[c] += av * avals[u]
			}
		}
		count := 0.0
		for _, c := range touched {
			if accum[c] == 2 {
				count++
			}
			accum[c] = 0
		}
		touched = touched[:0]
		out[i] = count
	}
	return out
}

// KTrussAdj computes the k-truss from an adjacency matrix, returning the
// adjacency matrix of the truss. Internally it converts to an incidence
// matrix, runs Algorithm 1, and converts back via A = EᵀE − diag.
func KTrussAdj(adj *sparse.Matrix, k int) *sparse.Matrix {
	E := IncidenceFromAdjacency(adj)
	Ek := KTrussEdge(E, k)
	if Ek.Rows() == 0 {
		return sparse.New(adj.Rows(), adj.Cols())
	}
	return sparse.NoDiag(sparse.SpGEMM(sparse.Transpose(Ek), Ek, semiring.PlusTimes))
}

// IncidenceFromAdjacency builds the unoriented incidence matrix from a
// symmetric 0/1 adjacency matrix, one row per upper-triangular edge.
func IncidenceFromAdjacency(adj *sparse.Matrix) *sparse.Matrix {
	upper := sparse.Triu(adj, 1)
	var ts []sparse.Triple
	row := 0
	for _, t := range upper.Triples() {
		ts = append(ts, sparse.Triple{Row: row, Col: t.Row, Val: 1},
			sparse.Triple{Row: row, Col: t.Col, Val: 1})
		row++
	}
	return sparse.NewFromTriples(row, adj.Cols(), ts, semiring.PlusTimes)
}

// TrussDecomposition returns, for the graph with incidence matrix E, the
// maximum k for which each edge of E belongs to a k-truss, following the
// paper's procedure: compute the 3-truss, pass the result to k = 4, and
// continue until the incidence matrix is empty. The result maps each
// original edge row index to its truss number (2 if it survives no
// higher truss).
func TrussDecomposition(E *sparse.Matrix) []int {
	m := E.Rows()
	out := make([]int, m)
	for i := range out {
		out[i] = 2 // any graph is a 2-truss
	}
	// Track original row identities through the shrinking matrices.
	alive := make([]int, m)
	for i := range alive {
		alive[i] = i
	}
	cur := E
	for k := 3; cur.Rows() > 0; k++ {
		next := KTrussEdge(cur, k)
		if next.Rows() == 0 {
			break
		}
		// Identify surviving rows of cur: KTrussEdge preserves row order,
		// so match rows by walking both matrices.
		surviving := survivingRows(cur, next)
		newAlive := make([]int, 0, len(surviving))
		for _, r := range surviving {
			out[alive[r]] = k
			newAlive = append(newAlive, alive[r])
		}
		alive = newAlive
		cur = next
	}
	return out
}

// survivingRows maps each row of next back to its row index in cur.
// KTrussEdge deletes rows but never reorders them, so a two-pointer walk
// over the row contents recovers the mapping.
func survivingRows(cur, next *sparse.Matrix) []int {
	out := make([]int, 0, next.Rows())
	ci := 0
	for ni := 0; ni < next.Rows(); ni++ {
		for ; ci < cur.Rows(); ci++ {
			if sameRow(cur, ci, next, ni) {
				out = append(out, ci)
				ci++
				break
			}
		}
	}
	return out
}

func sameRow(a *sparse.Matrix, ai int, b *sparse.Matrix, bi int) bool {
	acols, avals := a.Row(ai)
	bcols, bvals := b.Row(bi)
	if len(acols) != len(bcols) {
		return false
	}
	for i := range acols {
		if acols[i] != bcols[i] || avals[i] != bvals[i] {
			return false
		}
	}
	return true
}

// TriangleCount returns the number of triangles in the simple undirected
// graph with 0/1 adjacency matrix A, as trace(A³)/6 computed sparsely:
// Σ (A ⊗ A²) / 6.
func TriangleCount(adj *sparse.Matrix) float64 {
	a2 := sparse.SpGEMM(adj, adj, semiring.PlusTimes)
	hits := sparse.EWiseMult(adj, a2, semiring.PlusTimes)
	return sparse.Reduce(hits, semiring.PlusMonoid) / 6
}
