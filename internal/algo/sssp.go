package algo

import (
	"container/heap"
	"math"

	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// This file covers Table I's Shortest Path class with the semiring
// machinery the paper's §I describes: "the tropical semiring which
// replaces traditional algebra with the min operator and the traditional
// multiplication with the + operator".

// maxAbsRowSumDense is the ∞-norm of a dense matrix, used by the
// Algorithm 4 inverse seed.
func maxAbsRowSumDense(d *sparse.Dense) float64 {
	best := 0.0
	for i := 0; i < d.R; i++ {
		s := 0.0
		for j := 0; j < d.C; j++ {
			s += math.Abs(d.At(i, j))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// BellmanFord computes single-source shortest path distances over the
// weighted adjacency matrix (entries are edge weights; absent = no
// edge) by iterating x ← min(x, A ⊕.⊗ x) under the min.plus semiring.
// It detects negative cycles reachable from the source.
func BellmanFord(adj *sparse.Matrix, source int) (dist []float64, negCycle bool) {
	n := adj.Rows()
	inf := math.Inf(1)
	dist = make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0
	at := sparse.Transpose(adj) // relax over in-edges: dist[v] = min_u dist[u]+w(u,v)
	for round := 0; round < n; round++ {
		next := sparse.SpMV(at, dist, semiring.MinPlus)
		changed := false
		for i := range next {
			if next[i] < dist[i] {
				dist[i] = next[i]
				changed = true
			}
		}
		if !changed {
			return dist, false
		}
	}
	// An n-th improvement means a negative cycle.
	next := sparse.SpMV(at, dist, semiring.MinPlus)
	for i := range next {
		if next[i] < dist[i] {
			return dist, true
		}
	}
	return dist, false
}

// Dijkstra is the classical heap-based SSSP, used as the comparison
// baseline for the linear-algebraic formulations. Weights must be
// non-negative.
func Dijkstra(adj *sparse.Matrix, source int) []float64 {
	n := adj.Rows()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	pq := &distHeap{{source, 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		cols, vals := adj.Row(item.v)
		for i, u := range cols {
			if nd := item.d + vals[i]; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// APSP computes all-pairs shortest paths as the min.plus closure of
// (A ⊕ 0·I): repeated semiring squaring D ← D ⊕.⊗ D doubles the path
// length bound each round, reaching the closure in ⌈log₂ n⌉ SpGEMMs.
// This is the Floyd–Warshall computation recast as GraphBLAS kernels.
func APSP(adj *sparse.Matrix) *sparse.Matrix {
	n := adj.Rows()
	// D₀ = A with 0 diagonal (the min.plus identity matrix has 0s on
	// the diagonal and +inf elsewhere — i.e. entries absent).
	ts := adj.Triples()
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triple{Row: i, Col: i, Val: 0})
	}
	d := sparse.NewFromTriples(n, n, ts, semiring.MinPlus)
	for hops := 1; hops < n; hops *= 2 {
		next := sparse.SpGEMM(d, d, semiring.MinPlus)
		next = sparse.EWiseAdd(next, d, semiring.MinPlus)
		if sparse.Equal(next, d) {
			break
		}
		d = next
	}
	return d
}

// FloydWarshall is the classical O(n³) dense dynamic program, kept as
// the oracle for APSP. Unreachable pairs are +Inf.
func FloydWarshall(adj *sparse.Matrix) [][]float64 {
	n := adj.Rows()
	inf := math.Inf(1)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	for _, t := range adj.Triples() {
		if t.Row != t.Col && t.Val < d[t.Row][t.Col] {
			d[t.Row][t.Col] = t.Val
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// Johnson computes all-pairs shortest paths on graphs that may contain
// negative edge weights (but no negative cycles): a Bellman–Ford pass
// from a virtual source yields potentials h, edges are reweighted to
// ŵ(u,v) = w(u,v) + h(u) − h(v) ≥ 0, Dijkstra runs from every source,
// and distances are shifted back.
func Johnson(adj *sparse.Matrix) (*sparse.Matrix, bool) {
	n := adj.Rows()
	// Virtual source n with zero-weight edges to every vertex.
	ts := adj.Triples()
	for v := 0; v < n; v++ {
		ts = append(ts, sparse.Triple{Row: n, Col: v, Val: 0})
	}
	aug := sparse.NewFromTriples(n+1, n+1, ts, semiring.MinPlus)
	h, neg := BellmanFord(aug, n)
	if neg {
		return nil, false
	}
	// Reweight.
	var rts []sparse.Triple
	for _, t := range adj.Triples() {
		rts = append(rts, sparse.Triple{Row: t.Row, Col: t.Col,
			Val: t.Val + h[t.Row] - h[t.Col]})
	}
	rw := sparse.NewFromTriples(n, n, rts, semiring.MinPlus)
	var out []sparse.Triple
	for s := 0; s < n; s++ {
		dist := Dijkstra(rw, s)
		for v := 0; v < n; v++ {
			if !math.IsInf(dist[v], 1) {
				out = append(out, sparse.Triple{Row: s, Col: v,
					Val: dist[v] - h[s] + h[v]})
			}
		}
	}
	return sparse.NewFromTriples(n, n, out, semiring.MinPlus), true
}
