package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphulo/internal/gen"
)

func TestBFSLevelsPath(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Path(6))
	levels := BFSLevels(adj, 0)
	for v, want := range []int{0, 1, 2, 3, 4, 5} {
		if levels[v] != want {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], want)
		}
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	g := gen.Graph{N: 5, Edges: []gen.Edge{{U: 0, V: 1}, {U: 2, V: 3}}}
	levels := BFSLevels(gen.AdjacencyPattern(g), 0)
	if levels[1] != 1 || levels[2] != -1 || levels[3] != -1 || levels[4] != -1 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestBFSLevelsPaperGraph(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.PaperGraph())
	levels := BFSLevels(adj, 4) // v5 connects only to v2
	want := []int{2, 1, 2, 3, 0}
	for v := range want {
		if levels[v] != want[v] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestBFSParentsTreeValid(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(30, 60, 9))
	adj := gen.AdjacencyPattern(g)
	parents := BFSParents(adj, 0)
	levels := BFSLevels(adj, 0)
	for v := range parents {
		switch {
		case v == 0:
			if parents[v] != 0 {
				t.Fatalf("source parent = %d", parents[v])
			}
		case levels[v] == -1:
			if parents[v] != -1 {
				t.Fatalf("unreachable %d has parent %d", v, parents[v])
			}
		default:
			p := parents[v]
			if adj.At(p, v) == 0 {
				t.Fatalf("parent edge (%d,%d) missing", p, v)
			}
			if levels[p] != levels[v]-1 {
				t.Fatalf("parent %d at level %d, child %d at %d", p, levels[p], v, levels[v])
			}
		}
	}
}

func TestKHopNeighbors(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Path(6))
	got := KHopNeighbors(adj, 0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("2-hop from 0 = %v", got)
	}
}

func TestDFSOrderVisitsComponent(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Path(5))
	order := DFSOrder(adj, 0)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DFS order = %v", order)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := gen.Graph{N: 7, Edges: []gen.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 5, V: 6}}}
	cc := ConnectedComponents(gen.AdjacencyPattern(g))
	if cc[0] != cc[1] || cc[1] != cc[2] || cc[0] != 0 {
		t.Fatalf("component 0 wrong: %v", cc)
	}
	if cc[3] != cc[4] || cc[3] != 3 {
		t.Fatalf("component 1 wrong: %v", cc)
	}
	if cc[5] != cc[6] || cc[5] != 5 {
		t.Fatalf("component 2 wrong: %v", cc)
	}
	if cc[0] == cc[3] || cc[3] == cc[5] {
		t.Fatalf("components merged: %v", cc)
	}
}

// Property: BFS levels match a classical queue-based BFS.
func TestQuickBFSMatchesClassical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := gen.Dedup(gen.ErdosRenyi(n, m, uint64(seed)+100))
		adj := gen.AdjacencyPattern(g)
		src := rng.Intn(n)
		got := BFSLevels(adj, src)
		// Classical BFS.
		want := make([]int, n)
		for i := range want {
			want[i] = -1
		}
		want[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cols, _ := adj.Row(v)
			for _, u := range cols {
				if want[u] == -1 {
					want[u] = want[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: connected components agree with BFS reachability.
func TestQuickComponentsMatchBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		m := rng.Intn(n + 5)
		g := gen.Dedup(gen.ErdosRenyi(n, min(m, n*(n-1)/2), uint64(seed)+200))
		adj := gen.AdjacencyPattern(g)
		cc := ConnectedComponents(adj)
		for u := 0; u < n; u++ {
			levels := BFSLevels(adj, u)
			for v := 0; v < n; v++ {
				reachable := levels[v] >= 0
				sameComp := cc[u] == cc[v]
				if reachable != sameComp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
