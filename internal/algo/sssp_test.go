package algo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

func weightedGraph(seed uint64, n, m int) *sparse.Matrix {
	g := gen.Dedup(gen.ErdosRenyi(n, m, seed))
	ts := gen.WeightedEdges(g, 10, seed+1)
	return sparse.NewFromTriples(n, n, ts, semiring.MinPlus)
}

func TestBellmanFordPath(t *testing.T) {
	// Weighted path 0→1→2 with weights 2, 3.
	adj := sparse.NewFromTriples(3, 3, []sparse.Triple{
		{Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: 3},
	}, semiring.MinPlus)
	dist, neg := BellmanFord(adj, 0)
	if neg {
		t.Fatalf("no negative cycle expected")
	}
	if dist[0] != 0 || dist[1] != 2 || dist[2] != 5 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBellmanFordUnreachable(t *testing.T) {
	adj := sparse.NewFromTriples(3, 3, []sparse.Triple{
		{Row: 0, Col: 1, Val: 1},
	}, semiring.MinPlus)
	dist, _ := BellmanFord(adj, 0)
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("unreachable should be +Inf, got %v", dist[2])
	}
}

func TestBellmanFordNegativeEdgeOK(t *testing.T) {
	// Negative edge without a negative cycle.
	adj := sparse.NewFromTriples(3, 3, []sparse.Triple{
		{Row: 0, Col: 1, Val: 4}, {Row: 0, Col: 2, Val: 5},
		{Row: 1, Col: 2, Val: -3},
	}, semiring.MinPlus)
	dist, neg := BellmanFord(adj, 0)
	if neg {
		t.Fatalf("no negative cycle expected")
	}
	if dist[2] != 1 {
		t.Fatalf("dist[2] = %v, want 1 (via the negative edge)", dist[2])
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	adj := sparse.NewFromTriples(2, 2, []sparse.Triple{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: -2},
	}, semiring.MinPlus)
	if _, neg := BellmanFord(adj, 0); !neg {
		t.Fatalf("negative cycle not detected")
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		adj := weightedGraph(seed, 30, 80)
		bf, neg := BellmanFord(adj, 0)
		if neg {
			t.Fatalf("unexpected negative cycle")
		}
		dj := Dijkstra(adj, 0)
		for v := range bf {
			if math.Abs(bf[v]-dj[v]) > 1e-9 && !(math.IsInf(bf[v], 1) && math.IsInf(dj[v], 1)) {
				t.Fatalf("seed %d vertex %d: BF %v vs Dijkstra %v", seed, v, bf[v], dj[v])
			}
		}
	}
}

func TestAPSPMatchesFloydWarshall(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		adj := weightedGraph(seed, 20, 50)
		apsp := APSP(adj)
		fw := FloydWarshall(adj)
		n := adj.Rows()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got, stored := apsp.Get(i, j)
				want := fw[i][j]
				if math.IsInf(want, 1) {
					if stored {
						t.Fatalf("(%d,%d) should be unreachable, got %v", i, j, got)
					}
					continue
				}
				if !stored || math.Abs(got-want) > 1e-9 {
					t.Fatalf("seed %d (%d,%d): APSP %v (stored %v) vs FW %v", seed, i, j, got, stored, want)
				}
			}
		}
	}
}

func TestJohnsonHandlesNegativeWeights(t *testing.T) {
	// Directed triangle with a negative edge, no negative cycle.
	adj := sparse.NewFromTriples(3, 3, []sparse.Triple{
		{Row: 0, Col: 1, Val: 3}, {Row: 1, Col: 2, Val: -2}, {Row: 0, Col: 2, Val: 2},
	}, semiring.MinPlus)
	d, ok := Johnson(adj)
	if !ok {
		t.Fatalf("Johnson rejected a valid graph")
	}
	if got, _ := d.Get(0, 2); got != 1 {
		t.Fatalf("Johnson d(0,2) = %v, want 1", got)
	}
	fw := FloydWarshall(adj)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got, stored := d.Get(i, j)
			if math.IsInf(fw[i][j], 1) {
				if stored {
					t.Fatalf("(%d,%d) spurious distance", i, j)
				}
				continue
			}
			if math.Abs(got-fw[i][j]) > 1e-9 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, got, fw[i][j])
			}
		}
	}
}

func TestJohnsonRejectsNegativeCycle(t *testing.T) {
	adj := sparse.NewFromTriples(2, 2, []sparse.Triple{
		{Row: 0, Col: 1, Val: -1}, {Row: 1, Col: 0, Val: -1},
	}, semiring.MinPlus)
	if _, ok := Johnson(adj); ok {
		t.Fatalf("negative cycle should be rejected")
	}
}

// Property: APSP distances satisfy the triangle inequality and match
// per-source Dijkstra.
func TestQuickAPSPTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		m := rng.Intn(n*(n-1)/2 + 1)
		adj := weightedGraph(uint64(seed)+900, n, min(m, n*(n-1)/2))
		apsp := APSP(adj)
		for s := 0; s < n; s++ {
			dj := Dijkstra(adj, s)
			for v := 0; v < n; v++ {
				got, stored := apsp.Get(s, v)
				if math.IsInf(dj[v], 1) {
					if stored && s != v {
						return false
					}
					continue
				}
				if !stored || math.Abs(got-dj[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
