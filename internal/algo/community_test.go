package algo

import (
	"testing"

	"graphulo/internal/gen"
)

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two K6 cliques with no bridge: two communities, one per clique.
	g := gen.Dedup(gen.Barbell(6, 0))
	// Remove the bridge edge (Barbell adds one even with bridge=0).
	var edges []gen.Edge
	for _, e := range g.Edges {
		if (e.U < 6) == (e.V < 6) {
			edges = append(edges, e)
		}
	}
	g = gen.Graph{N: 12, Edges: edges}
	adj := gen.AdjacencyPattern(g)
	labels := LabelPropagation(adj, 100, 1)
	if CommunityCount(labels) != 2 {
		t.Fatalf("want 2 communities, got %d (%v)", CommunityCount(labels), labels)
	}
	for v := 1; v < 6; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique A split: %v", labels)
		}
	}
	for v := 7; v < 12; v++ {
		if labels[v] != labels[6] {
			t.Fatalf("clique B split: %v", labels)
		}
	}
	if labels[0] == labels[6] {
		t.Fatalf("cliques merged: %v", labels)
	}
}

func TestLabelPropagationBarbell(t *testing.T) {
	// Two K8 cliques with a single bridge edge: still two communities.
	g := gen.Dedup(gen.Barbell(8, 0))
	adj := gen.AdjacencyPattern(g)
	labels := LabelPropagation(adj, 100, 3)
	if c := CommunityCount(labels); c != 2 {
		t.Fatalf("want 2 communities, got %d", c)
	}
	q := Modularity(adj, labels)
	if q < 0.4 {
		t.Fatalf("barbell modularity %v too low", q)
	}
}

func TestModularityBounds(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Complete(6))
	// Single community over a clique: Q = 1 − 1 = 0.
	all := make([]int, 6)
	if q := Modularity(adj, all); q != 0 {
		t.Fatalf("single-community clique modularity = %v, want 0", q)
	}
	// Each vertex its own community: strictly negative.
	each := []int{0, 1, 2, 3, 4, 5}
	if q := Modularity(adj, each); q >= 0 {
		t.Fatalf("singleton modularity = %v, want negative", q)
	}
	// Empty graph: zero by convention.
	empty := gen.AdjacencyPattern(gen.Graph{N: 3})
	if q := Modularity(empty, []int{0, 1, 2}); q != 0 {
		t.Fatalf("empty graph modularity = %v", q)
	}
}

func TestLabelPropagationIsolatedVertices(t *testing.T) {
	g := gen.Graph{N: 4, Edges: []gen.Edge{{U: 0, V: 1}}}
	labels := LabelPropagation(gen.AdjacencyPattern(g), 50, 2)
	if labels[0] != labels[1] {
		t.Fatalf("connected pair split")
	}
	if labels[2] == labels[0] || labels[3] == labels[0] || labels[2] == labels[3] {
		t.Fatalf("isolated vertices should keep unique labels: %v", labels)
	}
}
