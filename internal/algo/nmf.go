package algo

import (
	"fmt"
	"math"
	"sort"

	"graphulo/internal/gen"
	"graphulo/internal/sparse"
)

// This file implements the paper's community-detection pipeline
// (Table I: Community Detection):
//
//   - Algorithm 4: matrix inverse by Newton–Schulz iteration
//     X_{t+1} = X_t(2I − AX_t), seeded with X₁ = Aᵀ/(‖A‖row·‖A‖col),
//     expressible purely in GraphBLAS kernels.
//   - Algorithms 3/5: non-negative matrix factorisation A ≈ W·H by
//     alternating least squares, solving each step with the iterative
//     inverse and clamping negatives to zero.
//   - Topic extraction mirroring Fig. 3: top terms per topic and
//     document→topic assignment.

// InverseDense computes A⁻¹ for a small dense matrix with the paper's
// Algorithm 4. It returns the inverse, the iterations used, and whether
// the Frobenius-norm stopping test ‖X_{t+1} − X_t‖_F ≤ eps was met
// within maxIter.
func InverseDense(a *sparse.Dense, eps float64, maxIter int) (*sparse.Dense, int, bool) {
	if a.R != a.C {
		panic("algo: inverse of non-square matrix")
	}
	if eps <= 0 {
		eps = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	n := a.R
	// X₁ = Aᵀ / (‖A‖row · ‖A‖col); both norms are GraphBLAS Reduce+max.
	rowN := maxAbsRowSumDense(a)
	colN := maxAbsRowSumDense(a.T())
	x := a.T().ScaleDense(1 / (rowN * colN))
	twoI := sparse.NewDense(n, n)
	for i := 0; i < n; i++ {
		twoI.Set(i, i, 2)
	}
	for it := 1; it <= maxIter; it++ {
		// X_{t+1} = X_t (2I − A X_t)
		ax := a.MulDense(x)
		next := x.MulDense(twoI.SubDense(ax))
		if next.SubDense(x).Frobenius() <= eps {
			return next, it, true
		}
		x = next
	}
	return x, maxIter, false
}

// Inverse computes A⁻¹ for a sparse square matrix with Algorithm 4,
// using sparse kernels throughout (the paper's §IV notes this can
// densify; it remains exact for well-conditioned inputs).
func Inverse(a *sparse.Matrix, eps float64, maxIter int) (*sparse.Matrix, int, bool) {
	inv, it, ok := InverseDense(sparse.ToDense(a), eps, maxIter)
	if inv == nil {
		return nil, it, ok
	}
	return inv.ToSparse(), it, ok
}

// NMFResult carries the factorisation and its convergence record.
type NMFResult struct {
	W          *sparse.Dense // m×k basis (documents × topics)
	H          *sparse.Dense // k×n weights (topics × terms)
	Iterations int
	Residual   float64 // final ‖A − WH‖_F
	Converged  bool
}

// NMFConfig parameterises the factorisation.
type NMFConfig struct {
	Topics  int     // k
	Eps     float64 // stop when ‖A−WH‖_F change < Eps (default 1e-3 relative)
	MaxIter int     // default 100
	Seed    uint64  // W initialisation
}

// NMF factorises the sparse non-negative matrix A (m×n) into W (m×k) and
// H (k×n) with the paper's Algorithm 5: alternating least squares where
// the normal-equation solves use the Algorithm 4 iterative inverse of
// the small k×k Gram matrices, and negatives are clamped to zero after
// each solve.
func NMF(a *sparse.Matrix, cfg NMFConfig) NMFResult {
	if cfg.Topics <= 0 {
		panic("algo: NMF needs Topics >= 1")
	}
	k := cfg.Topics
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 1e-4
	}
	m := a.Rows()
	rng := gen.NewRand(cfg.Seed + 1)
	// W = random m×k matrix (paper initialisation).
	W := sparse.NewDense(m, k)
	for i := range W.Data {
		W.Data[i] = 0.1 + 0.9*rng.Float64()
	}
	var H *sparse.Dense
	prevResidual := -1.0
	normA := sparse.FrobeniusNorm(a)
	for it := 1; it <= cfg.MaxIter; it++ {
		// Solve H = (WᵀW)⁻¹ Wᵀ A, clamp at 0.
		wtw := W.T().MulDense(W)
		wtwInv, _, ok := InverseDense(ridge(wtw), 1e-12, 300)
		if !ok {
			wtwInv, _ = sparse.GaussJordanInverse(ridge(wtw))
		}
		wta := denseTMulSparse(W, a) // Wᵀ·A, k×n
		H = wtwInv.MulDense(wta).ClampNonNegative()

		// Solve Wᵀ = (HHᵀ)⁻¹ H Aᵀ, i.e. W = A Hᵀ (HHᵀ)⁻ᵀ, clamp at 0.
		hht := H.MulDense(H.T())
		hhtInv, _, ok := InverseDense(ridge(hht), 1e-12, 300)
		if !ok {
			hhtInv, _ = sparse.GaussJordanInverse(ridge(hht))
		}
		aht := sparse.MulSparseDense(a, H.T()) // m×k
		W = aht.MulDense(hhtInv.T()).ClampNonNegative()

		// Convergence: ‖A − WH‖_F via the sparse-aware expansion
		// ‖A‖² − 2⟨A, WH⟩ + ‖WH‖² to avoid materialising WH densely.
		res := residualFrobenius(a, W, H, normA)
		if prevResidual >= 0 && math.Abs(prevResidual-res) < cfg.Eps*normA {
			return NMFResult{W: W, H: H, Iterations: it, Residual: res, Converged: true}
		}
		prevResidual = res
	}
	return NMFResult{W: W, H: H, Iterations: cfg.MaxIter, Residual: prevResidual, Converged: false}
}

// ridge adds a small diagonal regulariser so rank-deficient Gram
// matrices stay invertible (standard ALS practice; without it a dead
// topic would make WᵀW singular).
func ridge(g *sparse.Dense) *sparse.Dense {
	out := g.Clone()
	for i := 0; i < out.R; i++ {
		out.Data[i*out.C+i] += 1e-9
	}
	return out
}

// denseTMulSparse computes Wᵀ·A (k×n) without forming Wᵀ explicitly.
func denseTMulSparse(w *sparse.Dense, a *sparse.Matrix) *sparse.Dense {
	k := w.C
	out := sparse.NewDense(k, a.Cols())
	for i := 0; i < a.Rows(); i++ {
		cols, vals := a.Row(i)
		wrow := w.Data[i*k : (i+1)*k]
		for t, j := range cols {
			av := vals[t]
			for l := 0; l < k; l++ {
				out.Data[l*a.Cols()+j] += wrow[l] * av
			}
		}
	}
	return out
}

// residualFrobenius returns ‖A − WH‖_F using
// ‖A‖² − 2 Σ_{A(i,j)≠0} A(i,j)·(WH)(i,j) + ‖WH‖²,
// where ‖WH‖² = trace((WᵀW)(HHᵀ)) is k×k work.
func residualFrobenius(a *sparse.Matrix, w, h *sparse.Dense, normA float64) float64 {
	k := w.C
	cross := 0.0
	for i := 0; i < a.Rows(); i++ {
		cols, vals := a.Row(i)
		wrow := w.Data[i*k : (i+1)*k]
		for t, j := range cols {
			wh := 0.0
			for l := 0; l < k; l++ {
				wh += wrow[l] * h.Data[l*h.C+j]
			}
			cross += vals[t] * wh
		}
	}
	wtw := w.T().MulDense(w)
	hht := h.MulDense(h.T())
	whNormSq := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			whNormSq += wtw.At(i, j) * hht.At(j, i)
		}
	}
	v := normA*normA - 2*cross + whNormSq
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Topic summarisation (Fig. 3): top terms per topic and per-document
// assignments.

// TopTerms returns the topN column indices with the largest weight in
// each topic (row of H).
func TopTerms(h *sparse.Dense, topN int) [][]int {
	out := make([][]int, h.R)
	for t := 0; t < h.R; t++ {
		type tw struct {
			j int
			w float64
		}
		row := make([]tw, h.C)
		for j := 0; j < h.C; j++ {
			row[j] = tw{j, h.At(t, j)}
		}
		sort.Slice(row, func(a, b int) bool {
			if row[a].w != row[b].w {
				return row[a].w > row[b].w
			}
			return row[a].j < row[b].j
		})
		n := topN
		if n > len(row) {
			n = len(row)
		}
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = row[i].j
		}
		out[t] = ids
	}
	return out
}

// AssignTopics returns each document's dominant topic: argmax over the
// rows of W.
func AssignTopics(w *sparse.Dense) []int {
	out := make([]int, w.R)
	for i := 0; i < w.R; i++ {
		best, bestW := 0, w.At(i, 0)
		for t := 1; t < w.C; t++ {
			if v := w.At(i, t); v > bestW {
				best, bestW = t, v
			}
		}
		out[i] = best
	}
	return out
}

// TopicPurity measures how well assignments recover a planted ground
// truth: for each recovered topic, the fraction of its documents sharing
// the topic's majority label, averaged over documents. 1.0 is perfect
// recovery (up to label permutation).
func TopicPurity(assigned, truth []int, k int) float64 {
	if len(assigned) != len(truth) {
		panic(fmt.Sprintf("algo: purity length mismatch %d vs %d", len(assigned), len(truth)))
	}
	if len(assigned) == 0 {
		return 1
	}
	counts := make(map[[2]int]int)
	for i := range assigned {
		counts[[2]int{assigned[i], truth[i]}]++
	}
	correct := 0
	for a := 0; a < k; a++ {
		best := 0
		for tr := 0; tr < k; tr++ {
			if c := counts[[2]int{a, tr}]; c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assigned))
}
