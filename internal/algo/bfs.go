// Package algo implements the paper's graph algorithms as sparse linear
// algebra over the GraphBLAS kernels: one or more algorithms for every
// class in Table I (exploration & traversal, subgraph detection,
// centrality, similarity, community detection, prediction, shortest
// path), including the paper's Algorithm 1 (k-truss), Algorithm 2
// (Jaccard), and Algorithms 3–5 (NMF with an iterative matrix inverse).
package algo

import (
	"fmt"

	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// BFSLevels runs breadth-first search from source over the adjacency
// matrix, returning each vertex's level (hop distance); unreachable
// vertices get −1. The frontier expands with SpMSpV over the boolean
// semiring — Table I's Exploration & Traversal class as linear algebra.
func BFSLevels(adj *sparse.Matrix, source int) []int {
	n := adj.Rows()
	if adj.Cols() != n {
		panic("algo: BFS needs a square adjacency matrix")
	}
	if source < 0 || source >= n {
		panic(fmt.Sprintf("algo: BFS source %d out of range", source))
	}
	levels := make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	frontier := sparse.NewVector(n, []int{source}, []float64{1}, semiring.OrAnd)
	for depth := 1; frontier.NNZ() > 0; depth++ {
		next := sparse.SpMSpV(adj, frontier, semiring.OrAnd)
		// Mask out visited vertices, keeping the frontier sparse.
		var idx []int
		var val []float64
		for k, j := range next.Idx {
			if levels[j] == -1 {
				levels[j] = depth
				idx = append(idx, j)
				val = append(val, next.Val[k])
			}
		}
		frontier = &sparse.Vector{N: n, Idx: idx, Val: val}
	}
	return levels
}

// BFSParents runs BFS returning the parent tree: parents[v] is the
// vertex that discovered v (source's parent is itself; unreachable is
// −1). The parent is carried through the semiring product by encoding
// vertex ids as values under a min-combine.
func BFSParents(adj *sparse.Matrix, source int) []int {
	n := adj.Rows()
	parents := make([]int, n)
	for i := range parents {
		parents[i] = -1
	}
	parents[source] = source
	// Frontier values carry the parent id + 1 (so 0 stays "empty");
	// combining with min picks the smallest-id parent deterministically.
	ring := semiring.Semiring{
		Name: "min.first",
		Add:  semiring.MinMonoid.Op,
		Mul:  func(a, _ float64) float64 { return a },
		Zero: semiring.MinMonoid.Identity,
		One:  0,
	}
	frontier := sparse.NewVector(n, []int{source}, []float64{float64(source + 1)}, ring)
	for frontier.NNZ() > 0 {
		next := sparse.SpMSpV(adj, frontier, ring)
		var idx []int
		var val []float64
		for k, j := range next.Idx {
			if parents[j] == -1 {
				parents[j] = int(next.Val[k]) - 1
				idx = append(idx, j)
				val = append(val, float64(j+1))
			}
		}
		frontier = &sparse.Vector{N: n, Idx: idx, Val: val}
	}
	return parents
}

// KHopNeighbors returns the vertices reachable from source in exactly ≤ k
// hops (excluding the source itself), via k rounds of frontier expansion.
func KHopNeighbors(adj *sparse.Matrix, source, k int) []int {
	levels := BFSLevels(adj, source)
	var out []int
	for v, l := range levels {
		if l > 0 && l <= k {
			out = append(out, v)
		}
	}
	return out
}

// DFSOrder returns a depth-first preorder from source. DFS is inherently
// sequential (Table I lists it; it does not vectorise the way BFS does),
// so this is the classical stack algorithm reading adjacency rows.
func DFSOrder(adj *sparse.Matrix, source int) []int {
	n := adj.Rows()
	visited := make([]bool, n)
	var order []int
	stack := []int{source}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[v] {
			continue
		}
		visited[v] = true
		order = append(order, v)
		cols, _ := adj.Row(v)
		// Push in reverse so lower-numbered neighbours pop first.
		for i := len(cols) - 1; i >= 0; i-- {
			if !visited[cols[i]] {
				stack = append(stack, cols[i])
			}
		}
	}
	return order
}

// ConnectedComponents labels each vertex with the smallest vertex id in
// its component, by iterating label = min(label, A·label) under the
// min.first semiring until fixpoint.
func ConnectedComponents(adj *sparse.Matrix) []int {
	n := adj.Rows()
	labels := make([]float64, n)
	for i := range labels {
		labels[i] = float64(i)
	}
	ring := semiring.Semiring{
		Name: "min.second",
		Add:  semiring.MinMonoid.Op,
		Mul:  func(_, b float64) float64 { return b },
		Zero: semiring.MinMonoid.Identity,
		One:  0,
	}
	for {
		next := sparse.SpMV(adj, labels, ring)
		changed := false
		for i := range next {
			if next[i] < labels[i] {
				labels[i] = next[i]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int, n)
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}
