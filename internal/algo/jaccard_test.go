package algo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

// TestJaccardPaperExample reproduces Fig. 2 exactly: U, U², UUᵀ, UᵀU,
// and the final Jaccard fractions (1/5, 1/2, 1/4, 1/3, 2/3, …).
func TestJaccardPaperExample(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.PaperGraph())
	U := sparse.Triu(adj, 1)
	checkDense(t, "U", U, [][]float64{
		{0, 1, 1, 1, 0},
		{0, 0, 1, 0, 1},
		{0, 0, 0, 1, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	})
	U2 := sparse.SpGEMM(U, U, semiring.PlusTimes)
	checkDense(t, "U²", U2, [][]float64{
		{0, 0, 1, 1, 1},
		{0, 0, 0, 1, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	})
	X := sparse.SpGEMM(U, sparse.Transpose(U), semiring.PlusTimes)
	checkDense(t, "UUᵀ", X, [][]float64{
		{3, 1, 1, 0, 0},
		{1, 2, 0, 0, 0},
		{1, 0, 1, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	})
	Y := sparse.SpGEMM(sparse.Transpose(U), U, semiring.PlusTimes)
	checkDense(t, "UᵀU", Y, [][]float64{
		{0, 0, 0, 0, 0},
		{0, 1, 1, 1, 0},
		{0, 1, 2, 1, 1},
		{0, 1, 1, 2, 0},
		{0, 0, 1, 0, 1},
	})

	// Numerator J = U² + triu(X) + triu(Y), diagonal removed — the
	// middle matrix of Fig. 2.
	num := sparse.EWiseAdd(U2, sparse.Triu(X, 0), semiring.PlusTimes)
	num = sparse.EWiseAdd(num, sparse.Triu(Y, 0), semiring.PlusTimes)
	num = sparse.NoDiag(num)
	checkDense(t, "numerator", num, [][]float64{
		{0, 1, 2, 1, 1},
		{0, 0, 1, 2, 0},
		{0, 0, 0, 1, 1},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	})

	// Final symmetric Jaccard matrix with Fig. 2's fractions.
	J := Jaccard(adj)
	want := [][]float64{
		{0, 1.0 / 5, 1.0 / 2, 1.0 / 4, 1.0 / 3},
		{1.0 / 5, 0, 1.0 / 5, 2.0 / 3, 0},
		{1.0 / 2, 1.0 / 5, 0, 1.0 / 4, 1.0 / 3},
		{1.0 / 4, 2.0 / 3, 1.0 / 4, 0, 0},
		{1.0 / 3, 0, 1.0 / 3, 0, 0},
	}
	d := J.Dense()
	for i := range want {
		for j := range want[i] {
			if math.Abs(d[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("J(%d,%d) = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestJaccardMatchesDenseFormulation(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.Dedup(gen.ErdosRenyi(30, 100, seed))
		adj := gen.AdjacencyPattern(g)
		a := Jaccard(adj)
		b := JaccardDense(adj)
		if !sparse.ApproxEqual(a, b, 1e-12) {
			t.Fatalf("seed %d: triangular and dense Jaccard disagree", seed)
		}
	}
}

func TestJaccardPairMatchesMatrix(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(20, 60, 3))
	adj := gen.AdjacencyPattern(g)
	J := Jaccard(adj)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if u == v {
				continue
			}
			if got, want := JaccardPair(adj, u, v), J.At(u, v); math.Abs(got-want) > 1e-12 {
				t.Fatalf("pair (%d,%d): %v vs %v", u, v, got, want)
			}
		}
	}
}

func TestJaccardCompleteGraph(t *testing.T) {
	// In K_n any two vertices share n−2 neighbours out of n (union
	// includes each other): J = (n−2)/n.
	adj := gen.AdjacencyPattern(gen.Complete(6))
	J := Jaccard(adj)
	want := 4.0 / 6.0
	if math.Abs(J.At(0, 3)-want) > 1e-12 {
		t.Fatalf("K6 Jaccard = %v, want %v", J.At(0, 3), want)
	}
}

func TestLinkPrediction(t *testing.T) {
	// Two vertices with identical neighbourhoods but no edge between
	// them should be the top predicted link: a 4-cycle 0-1-2-3 where 0
	// and 2 share {1,3}.
	adj := gen.AdjacencyPattern(gen.Cycle(4))
	preds := LinkPrediction(adj, 5)
	if len(preds) == 0 {
		t.Fatalf("no predictions")
	}
	top := preds[0]
	if !(top.U == 0 && top.V == 2 || top.U == 1 && top.V == 3) {
		t.Fatalf("top prediction = %+v, want diagonal of the 4-cycle", top)
	}
	if top.Score != 1 {
		t.Fatalf("identical neighbourhoods should score 1, got %v", top.Score)
	}
	// Predictions never include existing edges.
	for _, p := range preds {
		if adj.At(p.U, p.V) != 0 {
			t.Fatalf("predicted an existing edge %+v", p)
		}
	}
}

func TestNeighborMatchingScore(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(15, 40, 7))
	adj := gen.AdjacencyPattern(g)
	if got := NeighborMatchingScore(adj, adj); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	empty := sparse.New(15, 15)
	if got := NeighborMatchingScore(adj, empty); got >= 0.5 {
		t.Fatalf("graph vs empty similarity = %v, should be small", got)
	}
}

// Property: Jaccard values lie in [0, 1], the matrix is symmetric with
// zero diagonal, and J(u,v) = 1 whenever N(u) = N(v) ≠ ∅.
func TestQuickJaccardProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := gen.Dedup(gen.ErdosRenyi(n, m, uint64(seed)+5000))
		adj := gen.AdjacencyPattern(g)
		J := Jaccard(adj)
		for _, tr := range J.Triples() {
			if tr.Val < 0 || tr.Val > 1 {
				return false
			}
			if tr.Row == tr.Col {
				return false
			}
			if math.Abs(J.At(tr.Col, tr.Row)-tr.Val) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
