package algo

import (
	"math"
	"testing"

	"graphulo/internal/gen"
	"graphulo/internal/semiring"
	"graphulo/internal/sparse"
)

func TestClosenessPath(t *testing.T) {
	// Path 0-1-2: centre has distances {1,1}, ends {1,2}.
	adj := gen.AdjacencyPattern(gen.Path(3))
	c := ClosenessCentrality(adj)
	if !(c[1] > c[0] && c[1] > c[2]) {
		t.Fatalf("centre should dominate: %v", c)
	}
	// Exact value for the centre: reach=2, n-1=2, sum=2 → 1·(2/2)=1.
	if math.Abs(c[1]-1) > 1e-12 {
		t.Fatalf("centre closeness = %v, want 1", c[1])
	}
	// Ends: (2/2)·(2/3) = 2/3.
	if math.Abs(c[0]-2.0/3) > 1e-12 {
		t.Fatalf("end closeness = %v, want 2/3", c[0])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := gen.Graph{N: 4, Edges: []gen.Edge{{U: 0, V: 1}}}
	c := ClosenessCentrality(gen.AdjacencyPattern(g))
	// Vertices 2,3 isolated: closeness 0; 0,1 reach only each other.
	if c[2] != 0 || c[3] != 0 {
		t.Fatalf("isolated vertices should score 0: %v", c)
	}
	// 0 reaches 1 of 3 others at distance 1: (1/3)·(1/1) = 1/3.
	if math.Abs(c[0]-1.0/3) > 1e-12 {
		t.Fatalf("c[0] = %v, want 1/3", c[0])
	}
}

func TestHarmonicCentrality(t *testing.T) {
	adj := gen.AdjacencyPattern(gen.Path(3))
	h := HarmonicCentrality(adj)
	// Ends: 1 + 1/2 = 1.5; centre: 1 + 1 = 2.
	if math.Abs(h[0]-1.5) > 1e-12 || math.Abs(h[1]-2) > 1e-12 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestClosenessWeightedMatchesUnitWeights(t *testing.T) {
	g := gen.Dedup(gen.ErdosRenyi(15, 40, 3))
	adj01 := gen.AdjacencyPattern(g)
	// Weighted closeness with all weights 1 equals BFS closeness.
	var ts []sparse.Triple
	for _, e := range g.Edges {
		ts = append(ts, sparse.Triple{Row: e.U, Col: e.V, Val: 1},
			sparse.Triple{Row: e.V, Col: e.U, Val: 1})
	}
	w := sparse.NewFromTriples(g.N, g.N, ts, semiring.MinPlus)
	a := ClosenessCentrality(adj01)
	b := ClosenessWeighted(w)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("closeness mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHITSStar(t *testing.T) {
	// Undirected star: hub vertex 0 dominates both scores.
	adj := gen.AdjacencyPattern(gen.Star(6))
	res := HITS(adj, 1e-12, 2000)
	if !res.Converged {
		t.Fatalf("HITS did not converge")
	}
	for v := 1; v < 6; v++ {
		if res.Hubs[v] >= res.Hubs[0] || res.Authorities[v] >= res.Authorities[0] {
			t.Fatalf("hub should dominate: hubs=%v auths=%v", res.Hubs, res.Authorities)
		}
	}
}

func TestHITSDirectedBipartite(t *testing.T) {
	// 0,1 → 2,3: sources are pure hubs, sinks pure authorities.
	g := gen.Graph{N: 4, Edges: []gen.Edge{
		{U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3},
	}}
	adj := gen.AdjacencyDirected(g)
	res := HITS(adj, 1e-12, 2000)
	if res.Hubs[2] > 1e-9 || res.Hubs[3] > 1e-9 {
		t.Fatalf("sinks should have no hub score: %v", res.Hubs)
	}
	if res.Authorities[0] > 1e-9 || res.Authorities[1] > 1e-9 {
		t.Fatalf("sources should have no authority score: %v", res.Authorities)
	}
	if math.Abs(res.Hubs[0]-res.Hubs[1]) > 1e-9 {
		t.Fatalf("symmetric hubs differ: %v", res.Hubs)
	}
}

func TestLocalClusteringCoefficient(t *testing.T) {
	// K4: every vertex's neighbours are fully connected → 1.
	adj := gen.AdjacencyPattern(gen.Complete(4))
	for v, c := range LocalClusteringCoefficient(adj) {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("K4 clustering[%d] = %v, want 1", v, c)
		}
	}
	// Star: hub's neighbours are never connected → 0; leaves have
	// degree 1 → 0 by convention.
	star := gen.AdjacencyPattern(gen.Star(5))
	for v, c := range LocalClusteringCoefficient(star) {
		if c != 0 {
			t.Fatalf("star clustering[%d] = %v, want 0", v, c)
		}
	}
	// Paper graph: v4 (idx 3) has neighbours {v1, v3} which are
	// connected → coefficient 1. v1 (idx 0) has neighbours {v2,v3,v4},
	// with 2 of 3 pairs connected → 2/3.
	pg := gen.AdjacencyPattern(gen.PaperGraph())
	cc := LocalClusteringCoefficient(pg)
	if math.Abs(cc[3]-1) > 1e-12 {
		t.Fatalf("paper graph cc[v4] = %v, want 1", cc[3])
	}
	if math.Abs(cc[0]-2.0/3) > 1e-12 {
		t.Fatalf("paper graph cc[v1] = %v, want 2/3", cc[0])
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	if got := GlobalClusteringCoefficient(gen.AdjacencyPattern(gen.Complete(5))); math.Abs(got-1) > 1e-12 {
		t.Fatalf("K5 global clustering = %v, want 1", got)
	}
	if got := GlobalClusteringCoefficient(gen.AdjacencyPattern(gen.Star(6))); got != 0 {
		t.Fatalf("star global clustering = %v, want 0", got)
	}
	if got := GlobalClusteringCoefficient(gen.AdjacencyPattern(gen.Path(5))); got != 0 {
		t.Fatalf("path global clustering = %v, want 0", got)
	}
}
