// Command loadgen drives the query scheduler with a concurrent mixed
// kernel stream — the standalone twin of BenchmarkConcurrentKernels
// for soak runs against real daemons. N workers share one graph's
// tables and rotate through AdjBFS, Jaccard, and TableMult, spread
// across weighted tenants, while admission control, the pass limit
// (fair-share + shared-scan folding), and per-query budgets are live.
// The run prints aggregate throughput, end-to-end latency quantiles,
// scheduler queue wait, and a per-tenant breakdown.
//
// Usage:
//
//	loadgen -workers 8 -ops 6 -scale 7                 # in-process cluster
//	loadgen -transport tcp -workers 8                  # TCP loopback
//	loadgen -servers 127.0.0.1:9471,127.0.0.1:9472     # external daemons
//
// Scheduler knobs mirror cmd/graphulo: -max-concurrent-queries,
// -max-queued-queries, -max-concurrent-passes, -tenants (workers are
// spread across t0..t{k-1}, with t0 weighted 2x).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"graphulo"
)

var (
	transportF = flag.String("transport", "inproc", "cluster transport: inproc or tcp")
	serversF   = flag.String("servers", "", "comma-separated external tablet server addresses (overrides -transport)")
	workersF   = flag.Int("workers", 4, "concurrent kernel workers")
	opsF       = flag.Int("ops", 6, "kernel calls per worker")
	scaleF     = flag.Int("scale", 7, "RMAT graph scale (2^scale vertices)")
	tenantsF   = flag.Int("tenants", 2, "tenant labels to spread workers across")
	maxQ       = flag.Int("max-concurrent-queries", 0, "query slots (0 = default)")
	maxQueued  = flag.Int("max-queued-queries", 0, "admission wait-queue depth (0 = default)")
	maxPasses  = flag.Int("max-concurrent-passes", 4, "concurrent tablet passes (0 = unlimited)")
	scanBudget = flag.Int64("scan-entry-budget", 0, "per-query scan-entry budget (0 = unlimited)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := graphulo.ClusterConfig{
		Transport:            *transportF,
		TabletServers:        4,
		MaxConcurrentQueries: *maxQ,
		MaxQueuedQueries:     *maxQueued,
		MaxConcurrentPasses:  *maxPasses,
		ScanEntryBudget:      *scanBudget,
		TenantWeights:        map[string]int{"t0": 2},
	}
	if *serversF != "" {
		cfg.Servers = strings.Split(*serversF, ",")
		cfg.Transport = ""
	}
	db, err := graphulo.Open(cfg)
	if err != nil {
		return err
	}
	defer db.Close()

	g := graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(*scaleF, 11)))
	tg, err := db.CreateGraph("LG")
	if err != nil {
		return err
	}
	if err := tg.Ingest(g); err != nil {
		return err
	}
	a, at, _ := tg.Tables()
	fmt.Printf("loadgen: %d workers x %d ops, %d vertices %d edges, %d tenants\n",
		*workersF, *opsF, g.N, len(g.Edges), *tenantsF)

	var (
		mu   sync.Mutex
		lats []time.Duration
		wg   sync.WaitGroup
	)
	errs := make([]error, *workersF)
	start := time.Now()
	for w := 0; w < *workersF; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", w%*tenantsF)
			for i := 0; i < *opsF; i++ {
				opStart := time.Now()
				var err error
				switch i % 3 {
				case 0:
					_, err = tg.BFSWithOptions([]int{1}, 2, graphulo.BFSOptions{Tenant: tenant})
				case 1:
					_, err = tg.Jaccard()
				default:
					out := fmt.Sprintf("LC_w%d_%d", w, i)
					if _, err = db.TableMultOpts(at, a, out, graphulo.MultOptions{Semiring: "plus.times", Tenant: tenant}); err == nil {
						err = db.Connector().TableOperations().Delete(out)
					}
				}
				if err != nil {
					errs[w] = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(opStart))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	// Scheduler accounting from the per-query telemetry this run minted.
	type tenantAgg struct {
		queries   int
		queueWait int64
		folds     int64
	}
	perTenant := map[string]*tenantAgg{}
	var queueWait, folds int64
	for _, qs := range db.QueryStats() {
		agg := perTenant[qs.Tenant]
		if agg == nil {
			agg = &tenantAgg{}
			perTenant[qs.Tenant] = agg
		}
		agg.queries++
		agg.queueWait += qs.Counters["queue_wait_nanos"]
		agg.folds += qs.Counters["shared_scan_folds"]
		queueWait += qs.Counters["queue_wait_nanos"]
		folds += qs.Counters["shared_scan_folds"]
	}

	ops := len(lats)
	fmt.Printf("loadgen: %d kernels in %s  qps=%.1f  p50=%s p99=%s  queue-wait/op=%s  shared-folds=%d\n",
		ops, wall.Round(time.Millisecond), float64(ops)/wall.Seconds(),
		quantile(0.50).Round(time.Millisecond), quantile(0.99).Round(time.Millisecond),
		(time.Duration(queueWait) / time.Duration(max(ops, 1))).Round(time.Microsecond), folds)
	tenants := make([]string, 0, len(perTenant))
	for tn := range perTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		agg := perTenant[tn]
		fmt.Printf("loadgen: tenant %-8s queries=%-4d queue-wait=%s\n",
			tn, agg.queries, time.Duration(agg.queueWait).Round(time.Microsecond))
	}
	return nil
}
