// Command reproduce regenerates every table and figure of the paper
// (see DESIGN.md §4 and EXPERIMENTS.md) and prints paper-vs-measured.
//
// Usage:
//
//	reproduce -exp all
//	reproduce -exp table1 | fig1 | ktruss-example | fig2 | fig3 | alg4 | ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphulo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all | table1 | fig1 | ktruss-example | fig2 | fig3 | alg4 | ablations")
	flag.Parse()

	experiments := map[string]func(){
		"table1":         table1,
		"fig1":           fig1,
		"ktruss-example": ktrussExample,
		"fig2":           fig2,
		"fig3":           fig3,
		"alg4":           alg4,
		"ablations":      ablations,
	}
	if *exp == "all" {
		for _, name := range []string{"fig1", "ktruss-example", "fig2", "alg4", "table1", "fig3", "ablations"} {
			fmt.Printf("=== %s ===\n", name)
			experiments[name]()
			fmt.Println()
		}
		return
	}
	f, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

// table1 demonstrates one algorithm per class of the paper's Table I.
func table1() {
	g := graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(8, 3)))
	adj := graphulo.AdjacencyPat(g)
	type row struct {
		class, algorithm, result string
	}
	timeIt := func(f func() string) (string, time.Duration) {
		start := time.Now()
		r := f()
		return r, time.Since(start)
	}
	var rows []row
	add := func(class, alg string, f func() string) {
		r, d := timeIt(f)
		rows = append(rows, row{class, alg, fmt.Sprintf("%s  (%v)", r, d.Round(time.Microsecond))})
	}
	add("Exploration & Traversal", "BFS (SpMSpV, or.and)", func() string {
		levels := graphulo.BFSLevels(adj, 0)
		reached := 0
		for _, l := range levels {
			if l >= 0 {
				reached++
			}
		}
		return fmt.Sprintf("reached %d/%d vertices", reached, g.N)
	})
	add("Subgraph Detection", "k-truss (Algorithm 1)", func() string {
		E := graphulo.Incidence(g)
		truss := graphulo.KTrussEdge(E, 4)
		return fmt.Sprintf("4-truss keeps %d/%d edges", truss.Rows(), E.Rows())
	})
	add("Centrality", "PageRank (power method)", func() string {
		res := graphulo.PageRank(adj, 0.15, 1e-12, 1000)
		return fmt.Sprintf("converged in %d iterations", res.Iterations)
	})
	add("Similarity", "Jaccard (Algorithm 2)", func() string {
		J := graphulo.Jaccard(adj)
		return fmt.Sprintf("%d similar pairs", J.NNZ()/2)
	})
	add("Community Detection", "NMF (Algorithms 3-5)", func() string {
		corpus := graphulo.NewTweets(graphulo.TweetCorpusConfig{NumTweets: 1000, Seed: 5})
		m, _, _ := corpus.A.Matrix()
		res := graphulo.NMF(m, graphulo.NMFConfig{Topics: 5, MaxIter: 30, Seed: 2})
		return fmt.Sprintf("k=5 residual %.1f", res.Residual)
	})
	add("Prediction", "link prediction (Jaccard)", func() string {
		preds := graphulo.LinkPrediction(adj, 3)
		if len(preds) == 0 {
			return "no candidates"
		}
		return fmt.Sprintf("top link (%d,%d) score %.3f", preds[0].U, preds[0].V, preds[0].Score)
	})
	add("Shortest Path", "Bellman-Ford (min.plus)", func() string {
		var ts []graphulo.Triple
		for i, e := range g.Edges {
			w := 1 + float64(i%5)
			ts = append(ts, graphulo.Triple{Row: e.U, Col: e.V, Val: w},
				graphulo.Triple{Row: e.V, Col: e.U, Val: w})
		}
		w := graphulo.NewMatrix(g.N, g.N, ts, graphulo.MinPlus)
		dist, _ := graphulo.BellmanFord(w, 0)
		reach := 0
		for _, d := range dist {
			if d < 1e308 {
				reach++
			}
		}
		return fmt.Sprintf("reaches %d vertices", reach)
	})
	fmt.Printf("Table I reproduction on RMAT scale 8 (%d vertices, %d edges):\n", g.N, len(g.Edges))
	for _, r := range rows {
		fmt.Printf("  %-24s %-28s %s\n", r.class, r.algorithm, r.result)
	}
}

// fig1 prints the example graph and its matrices.
func fig1() {
	g := graphulo.PaperGraph()
	fmt.Println("Fig. 1 graph: 5 vertices, 6 edges")
	fmt.Println("incidence matrix E (paper §III.B):")
	fmt.Print(graphulo.Incidence(g))
	fmt.Println("adjacency matrix A:")
	fmt.Print(graphulo.AdjacencyPat(g))
}

// ktrussExample replays the §III.B worked example step by step.
func ktrussExample() {
	g := graphulo.PaperGraph()
	E := graphulo.Incidence(g)
	Et := graphulo.Transpose(E)
	gram := graphulo.SpGEMM(Et, E, graphulo.PlusTimes)
	A := noDiag(gram)
	fmt.Println("A = EᵀE − diag(EᵀE):")
	fmt.Print(A)
	R := graphulo.SpGEMM(E, A, graphulo.PlusTimes)
	fmt.Println("R = EA (matches the paper's printed matrix):")
	fmt.Print(R)
	ind := graphulo.Apply(R, func(v float64) float64 {
		if v == 2 {
			return 1
		}
		return 0
	})
	s := graphulo.ReduceRows(ind, graphulo.PlusMonoid)
	fmt.Println("support s = (R==2)·1:", s, "(paper prints [1 1 1 1 2 0]; its 5-entry vector is a typo)")
	truss := graphulo.KTrussEdge(E, 3)
	fmt.Printf("3-truss: edge e6 removed, %d edges remain:\n", truss.Rows())
	fmt.Print(truss)
}

// fig2 reproduces the Jaccard worked example.
func fig2() {
	adj := graphulo.AdjacencyPat(graphulo.PaperGraph())
	J := graphulo.Jaccard(adj)
	fmt.Println("Jaccard coefficients of the Fig. 1 graph (paper Fig. 2):")
	fmt.Print(J)
	fmt.Println("paper values: J(1,2)=1/5, J(1,3)=1/2, J(1,4)=1/4, J(1,5)=1/3, J(2,4)=2/3")
	fmt.Printf("measured:     J(1,2)=%.4f J(1,3)=%.4f J(1,4)=%.4f J(1,5)=%.4f J(2,4)=%.4f\n",
		J.At(0, 1), J.At(0, 2), J.At(0, 3), J.At(0, 4), J.At(1, 3))
}

// fig3 runs the 20k-tweet topic modeling experiment.
func fig3() {
	corpus := graphulo.NewTweets(graphulo.TweetCorpusConfig{NumTweets: 20000, Seed: 42})
	m, docs, terms := corpus.A.Matrix()
	fmt.Printf("synthetic corpus: %d tweets, %d terms, %d entries\n",
		len(docs), len(terms), m.NNZ())
	start := time.Now()
	res := graphulo.NMF(m, graphulo.NMFConfig{Topics: 5, MaxIter: 40, Seed: 7})
	fmt.Printf("NMF k=5: %d iterations, residual %.1f, %v\n",
		res.Iterations, res.Residual, time.Since(start).Round(time.Millisecond))
	top := graphulo.TopTerms(res.H, 6)
	for t, ids := range top {
		fmt.Printf("topic %d:", t+1)
		for _, id := range ids {
			fmt.Printf(" %s", terms[id])
		}
		fmt.Println()
	}
	assigned := graphulo.AssignTopics(res.W)
	truth := make([]int, len(docs))
	for i, d := range docs {
		var id int
		fmt.Sscanf(d, "doc%d", &id)
		truth[i] = corpus.Topic[id]
	}
	fmt.Printf("purity vs planted communities: %.3f (paper: five clean topics)\n",
		graphulo.TopicPurity(assigned, truth, 5))
}

// alg4 checks the Newton–Schulz inverse on random well-conditioned
// matrices.
func alg4() {
	sizes := []int{4, 8, 16, 32}
	for _, n := range sizes {
		m := diagDominant(n)
		start := time.Now()
		inv, iters, ok := graphulo.InverseDense(m, 1e-12, 500)
		el := time.Since(start)
		residual := m.MulDense(inv)
		maxErr := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := abs(residual.At(i, j) - want); d > maxErr {
					maxErr = d
				}
			}
		}
		fmt.Printf("n=%2d: converged=%v iterations=%d ‖AX−I‖max=%.2e (%v)\n",
			n, ok, iters, maxErr, el.Round(time.Microsecond))
	}
}

// ablations runs the §IV design-choice comparisons.
func ablations() {
	g := graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(9, 5)))
	adj := graphulo.AdjacencyPat(g)
	fmt.Printf("workload: RMAT scale 9 (%d vertices, %d edges)\n", g.N, len(g.Edges))

	// (b) Jaccard: triangular vs dense formulation.
	start := time.Now()
	graphulo.Jaccard(adj)
	tri := time.Since(start)
	start = time.Now()
	graphulo.JaccardDense(adj)
	dense := time.Since(start)
	fmt.Printf("Jaccard triangular %v vs dense %v (speedup %.2fx)\n",
		tri.Round(time.Microsecond), dense.Round(time.Microsecond),
		float64(dense)/float64(tri))

	// (c) server-side vs client multiply.
	db, err := graphulo.Open(graphulo.ClusterConfig{TabletServers: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tg, err := db.CreateGraph("Ab")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := tg.Ingest(g); err != nil {
		fmt.Println("error:", err)
		return
	}
	a, at, _ := tg.Tables()
	_, _, _, scanned0 := db.Metrics()
	start = time.Now()
	if _, err := db.TableMult(at, a, "AbSqS", "plus.times"); err != nil {
		fmt.Println("error:", err)
		return
	}
	serverTime := time.Since(start)
	_, _, _, scanned1 := db.Metrics()
	start = time.Now()
	if _, err := db.TableMultClient(at, a, "AbSqC", "plus.times"); err != nil {
		fmt.Println("error:", err)
		return
	}
	clientTime := time.Since(start)
	_, _, _, scanned2 := db.Metrics()
	fmt.Printf("TableMult server-side: %v, %d entries to scan clients\n",
		serverTime.Round(time.Millisecond), scanned1-scanned0)
	fmt.Printf("TableMult thin-client: %v, %d entries to scan clients\n",
		clientTime.Round(time.Millisecond), scanned2-scanned1)
}

// --- helpers ---

func noDiag(m *graphulo.Matrix) *graphulo.Matrix {
	var ts []graphulo.Triple
	for _, t := range m.Triples() {
		if t.Row != t.Col {
			ts = append(ts, t)
		}
	}
	return graphulo.NewMatrix(m.Rows(), m.Cols(), ts, graphulo.PlusTimes)
}

func diagDominant(n int) *graphulo.Dense {
	d := &graphulo.Dense{R: n, C: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := float64((i*7+j*3)%5) / 10
				d.Data[i*n+j] = v
				row += v
			}
		}
		d.Data[i*n+i] = row + 1.5
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
