// Command graphulo runs the library's graph algorithms on generated
// workloads, against the embedded NoSQL cluster or in memory — and can
// run as a standalone tablet server for a multi-process cluster.
//
// Usage:
//
//	graphulo <algorithm> [flags]
//	graphulo serve -listen host:port
//
// Algorithms: mult, bfs, degrees, pagerank, eigen, katz, betweenness,
// ktruss, tricount, jaccard, nmf, sssp, components, info. `trace` runs
// the mult kernel and prints its telemetry span tree (coordinator scans
// and flushes plus per-daemon tablet passes) with per-query counters.
//
// Observability: -metrics-addr serves /metrics (Prometheus text),
// /queries (JSON span trees), and /debug/pprof over HTTP from kernel
// runs and serve-mode daemons alike; -slow-query-threshold logs slow
// kernels as JSON lines (to -slow-query-log or stderr).
//
// The kernel subcommands honour SpRef push-down flags: -row-start /
// -row-end restrict mult and bfs to a row band (only overlapping
// tablets execute the kernel), -colq-start / -colq-end restrict mult's
// output columns server-side, and -pre-agg-bytes sizes the RemoteWrite
// ⊕ pre-aggregation buffer that folds partial products before they
// cross the transport.
//
// The -graph flag selects the workload:
//
//	-graph rmat    -scale 10        Graph500 RMAT graph
//	-graph er      -n 500 -m 2000   Erdős–Rényi
//	-graph paper                    the paper's Fig. 1 graph
//	-graph clique  -n 100 -k 8      planted clique
//
// Cluster-backed runs (-db) choose their wire with -transport inproc
// (default) or -transport tcp; -servers host:port,host:port points the
// run at standalone tablet-server processes started with `graphulo
// serve`, so the kernels' tablet→tablet flows cross process boundaries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"graphulo"
)

var (
	graphKind  = flag.String("graph", "paper", "workload: rmat | er | paper | clique")
	scale      = flag.Int("scale", 8, "RMAT scale")
	nFlag      = flag.Int("n", 200, "vertices (er, clique)")
	mFlag      = flag.Int("m", 800, "edges (er)")
	kFlag      = flag.Int("k", 4, "truss k / clique size / hops / topics")
	seed       = flag.Uint64("seed", 1, "generator seed")
	source     = flag.Int("source", 0, "BFS/SSSP source vertex")
	useDB      = flag.Bool("db", false, "run through the embedded NoSQL cluster where supported")
	transportF = flag.String("transport", "", "cluster wire: inproc (default) or tcp — tcp runs every tablet server on its own socket")
	servers    = flag.String("servers", "", "comma-separated tablet-server endpoints from `graphulo serve` (implies -db and tcp)")
	listen     = flag.String("listen", "127.0.0.1:0", "serve mode: address to listen on")
	dataDir    = flag.String("data-dir", "", "durable cluster directory: graphs built in one invocation are queried in the next (implies -db)")
	scanPar    = flag.Int("scan-parallelism", 0, "tablets scanned concurrently per kernel pass (0 = cluster default)")
	cacheBy    = flag.Int64("block-cache-bytes", 0, "rfile block cache capacity in bytes (0 = 32 MiB default, negative disables)")
	bloomBits  = flag.Int("bloom-bits", 0, "bloom filter bits per distinct row in each rfile (0 = default of 10, negative disables)")
	colqBloom  = flag.Int("colq-bloom-bits", 0, "bloom filter bits per distinct (row, column-qualifier) pair in each rfile (0 = default of 10, negative disables)")
	flushBy    = flag.Int("memtable-flush-bytes", 0, "memtable byte budget before freeze-and-flush (0 = 64 MiB default, negative disables the byte trigger)")
	maxFrozen  = flag.Int("memtable-max-frozen", 0, "frozen memtables queued for background flush per tablet before writers stall (0 = default of 2)")
	maxRuns    = flag.Int("max-runs-per-tablet", 8, "background-majc run threshold per tablet (0 disables the compaction scheduler)")
	rowStart   = flag.String("row-start", "", "restrict mult/bfs to rows >= this key (SpRef push-down; empty = unbounded)")
	rowEnd     = flag.String("row-end", "", "restrict mult/bfs to rows < this key (SpRef push-down; empty = unbounded)")
	colqStart  = flag.String("colq-start", "", "restrict mult to column qualifiers >= this key (empty = unbounded)")
	colqEnd    = flag.String("colq-end", "", "restrict mult to column qualifiers < this key (empty = unbounded)")
	preAgg     = flag.Int("pre-agg-bytes", 0, "RemoteWrite ⊕ pre-aggregation buffer bytes per tablet pass (0 = 16 MiB default, negative disables)")
	semiringF  = flag.String("semiring", "plus.times", "mult ⊕.⊗ semiring (plus.times, min.plus, max.plus, or.and, max.min)")

	metricsAddr = flag.String("metrics-addr", "", "serve telemetry over HTTP on this address (/metrics, /queries, /debug/pprof); works for kernel runs and serve mode")
	slowQuery   = flag.Duration("slow-query-threshold", 0, "log kernel queries at least this slow as JSON lines (0 disables)")
	slowLogPath = flag.String("slow-query-log", "", "append slow-query lines to this file instead of stderr")

	tenantF     = flag.String("tenant", "", "tenant label for kernel queries: fair-share scheduling, budgets, per-tenant telemetry (empty = \"default\")")
	maxQueries  = flag.Int("max-concurrent-queries", 0, "kernel queries admitted concurrently (0 = default of 64, negative = unlimited)")
	maxQueued   = flag.Int("max-queued-queries", 0, "admission queue depth before queries are rejected outright (0 = default of 256)")
	maxPasses   = flag.Int("max-concurrent-passes", 0, "physical tablet scan passes executing at once across all queries; enables per-tenant fair-share pass queues and shared-scan folding (0 = unbounded)")
	scanBudget  = flag.Int64("scan-entry-budget", 0, "per-query scan-entry budget; a query exceeding it is cancelled with a budget error (0 = unlimited)")
	writeBudget = flag.Int64("write-byte-budget", 0, "per-query write wire-byte budget; a query exceeding it is cancelled with a budget error (0 = unlimited)")
	tenantCap   = flag.Int64("cache-tenant-soft-cap", 0, "per-tenant rfile block-cache soft cap in bytes: a tenant over its cap evicts its own blocks first (0 = off)")
)

// openDB starts the embedded cluster, durable when -data-dir is set,
// and returns the graph handle: the persisted graph when it already
// exists in the data dir (skipping re-ingest), a freshly ingested one
// otherwise.
func openDB(g graphulo.Graph) (*graphulo.DB, *graphulo.TableGraph, error) {
	var serverList []string
	if *servers != "" {
		for _, s := range strings.Split(*servers, ",") {
			if s = strings.TrimSpace(s); s != "" {
				serverList = append(serverList, s)
			}
		}
	}
	var slowLog io.Writer
	if *slowLogPath != "" {
		f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, err
		}
		slowLog = f
	}
	db, err := graphulo.Open(graphulo.ClusterConfig{
		DataDir:          *dataDir,
		ScanParallelism:  *scanPar,
		Transport:        *transportF,
		Servers:          serverList,
		BlockCacheBytes:  *cacheBy,
		BloomFilterBits:  *bloomBits,
		ColQBloomBits:    *colqBloom,
		MaxRunsPerTablet: *maxRuns,

		MemtableFlushBytes: *flushBy,
		MemtableMaxFrozen:  *maxFrozen,

		MetricsAddr:        *metricsAddr,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       slowLog,

		DefaultTenant:           *tenantF,
		MaxConcurrentQueries:    *maxQueries,
		MaxQueuedQueries:        *maxQueued,
		MaxConcurrentPasses:     *maxPasses,
		ScanEntryBudget:         *scanBudget,
		WriteByteBudget:         *writeBudget,
		CacheTenantSoftCapBytes: *tenantCap,
	})
	if err != nil {
		return nil, nil, err
	}
	if addr := db.MetricsAddr(); addr != "" {
		fmt.Printf("telemetry on http://%s (/metrics, /queries, /debug/pprof)\n", addr)
	}
	if *dataDir != "" {
		if tg, err := db.OpenGraph("G"); err == nil {
			fmt.Printf("reopened persisted graph from %s\n", *dataDir)
			return db, tg, nil
		}
	}
	tg, err := db.CreateGraph("G")
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := tg.Ingest(g); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, tg, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphulo <algorithm> [flags]\n")
		fmt.Fprintf(os.Stderr, "algorithms: mult trace bfs degrees pagerank eigen katz betweenness closeness hits clustering svd nominate ktruss tricount jaccard nmf sssp components info\n")
		fmt.Fprintf(os.Stderr, "explain [kernel]: print a kernel's compiled plan with fused groups marked (all kernels when omitted)\n\n")
		flag.PrintDefaults()
	}
	if len(os.Args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	algorithm := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if algorithm == "serve" {
		if err := serve(); err != nil {
			fmt.Fprintln(os.Stderr, "graphulo:", err)
			os.Exit(1)
		}
		return
	}
	if algorithm == "explain" {
		if err := explain(); err != nil {
			fmt.Fprintln(os.Stderr, "graphulo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(algorithm); err != nil {
		fmt.Fprintln(os.Stderr, "graphulo:", err)
		os.Exit(1)
	}
}

// explain prints compiled kernel plans with fused groups marked —
// `graphulo explain ktruss` for one kernel, `graphulo explain` for all.
// No cluster is started: the plan constructors are the ones the live
// drivers execute, so the printed trees are the executed trees.
func explain() error {
	kernels := graphulo.ExplainKernels()
	if len(os.Args) > 2 && !strings.HasPrefix(os.Args[2], "-") {
		kernels = []string{os.Args[2]}
	}
	for _, k := range kernels {
		out, err := graphulo.ExplainPlan(k, "A", "C")
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// serve runs a standalone tablet server until SIGINT/SIGTERM: one per
// process, addressed by a coordinator run with -servers.
func serve() error {
	srv, err := graphulo.ListenAndServeTablets(*listen, 0)
	if err != nil {
		return err
	}
	fmt.Printf("tablet server listening on %s\n", srv.Addr())
	if *metricsAddr != "" {
		addr, err := srv.StartTelemetry(*metricsAddr)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Printf("telemetry on http://%s (/metrics, /queries, /debug/pprof)\n", addr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return srv.Close()
}

func makeGraph() graphulo.Graph {
	switch *graphKind {
	case "rmat":
		return graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(*scale, *seed)))
	case "er":
		return graphulo.DedupGraph(graphulo.ErdosRenyi(*nFlag, *mFlag, *seed))
	case "clique":
		g, _ := graphulo.PlantedClique(*nFlag, 0.05, *kFlag, *seed)
		return graphulo.DedupGraph(g)
	default:
		return graphulo.PaperGraph()
	}
}

func run(algorithm string) error {
	g := makeGraph()
	adj := graphulo.AdjacencyPat(g)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, len(g.Edges))
	if *dataDir != "" || *servers != "" {
		*useDB = true
	}
	if *rowStart != "" || *rowEnd != "" {
		// Row bands are a server-side kernel option (SpRef push-down);
		// the in-memory algorithms take no band, so these flags imply a
		// cluster-backed run rather than being silently dropped.
		*useDB = true
	}

	switch algorithm {
	case "info":
		deg := graphulo.DegreeCentrality(adj)
		maxD := 0.0
		for _, d := range deg {
			if d > maxD {
				maxD = d
			}
		}
		fmt.Printf("max degree %v, triangles %v\n", maxD, graphulo.TriangleCount(adj))

	case "mult", "trace":
		// C ⊕= Aᵀ·A over the ingested graph — the raw TableMult kernel,
		// honouring the SpRef constraint and pre-aggregation flags. The
		// trace variant additionally prints the query's span tree and
		// per-query counters after the multiply.
		db, tg, err := openDB(g)
		if err != nil {
			return err
		}
		defer db.Close()
		a, at, _ := tg.Tables()
		n, err := db.TableMultOpts(at, a, "Gsq", graphulo.MultOptions{
			Semiring:    *semiringF,
			PreAggBytes: *preAgg,
			Constraint: graphulo.ScanConstraint{
				RowStart: *rowStart, RowEnd: *rowEnd,
				ColQStart: *colqStart, ColQEnd: *colqEnd,
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("TableMult %s·%s → Gsq under %s: %d entries written (server-side)\n", at, a, *semiringF, n)
		reportScanPipeline(db)
		if algorithm == "trace" {
			reportTraces(db)
		}
		return nil

	case "bfs":
		if *useDB {
			db, tg, err := openDB(g)
			if err != nil {
				return err
			}
			defer db.Close()
			levels, err := tg.BFSWithOptions([]int{*source}, *kFlag, graphulo.BFSOptions{
				RowStart: *rowStart, RowEnd: *rowEnd,
			})
			if err != nil {
				return err
			}
			fmt.Printf("visited %d vertices within %d hops (server-side)\n", len(levels), *kFlag)
			reportScanPipeline(db)
			return nil
		}
		levels := graphulo.BFSLevels(adj, *source)
		hist := map[int]int{}
		for _, l := range levels {
			hist[l]++
		}
		fmt.Printf("BFS level histogram from %d: %v\n", *source, hist)

	case "degrees":
		if *useDB {
			db, tg, err := openDB(g)
			if err != nil {
				return err
			}
			defer db.Close()
			degs, err := tg.Degrees()
			if err != nil {
				return err
			}
			fmt.Printf("degree table built server-side: %d vertices\n", len(degs))
			reportScanPipeline(db)
			return nil
		}
		printTop("degree", graphulo.DegreeCentrality(adj))

	case "pagerank":
		res := graphulo.PageRank(adj, 0.15, 1e-12, 1000)
		fmt.Printf("converged=%v iterations=%d\n", res.Converged, res.Iterations)
		printTop("pagerank", res.Scores)

	case "eigen":
		res := graphulo.EigenvectorCentrality(adj, 1e-10, 2000)
		fmt.Printf("converged=%v iterations=%d\n", res.Converged, res.Iterations)
		printTop("eigenvector", res.Scores)

	case "katz":
		res := graphulo.KatzCentrality(adj, 0.001, 1e-12, 500)
		fmt.Printf("converged=%v iterations=%d\n", res.Converged, res.Iterations)
		printTop("katz", res.Scores)

	case "betweenness":
		printTop("betweenness", graphulo.BetweennessCentrality(adj))

	case "closeness":
		printTop("closeness", graphulo.ClosenessCentrality(adj))
		printTop("harmonic", graphulo.HarmonicCentrality(adj))

	case "hits":
		res := graphulo.HITS(adj, 1e-10, 2000)
		fmt.Printf("converged=%v iterations=%d\n", res.Converged, res.Iterations)
		printTop("hubs", res.Hubs)
		printTop("authorities", res.Authorities)

	case "clustering":
		printTop("local clustering", graphulo.LocalClustering(adj))
		fmt.Printf("global clustering coefficient: %.4f\n", graphulo.GlobalClustering(adj))

	case "svd":
		res := graphulo.TruncatedSVD(adj, *kFlag, 1e-10, 2000)
		fmt.Printf("top-%d singular values: %.4g (in %d power iterations)\n",
			*kFlag, res.S, res.Iterations)

	case "nominate":
		scores := graphulo.VertexNomination(adj, []int{*source}, 0.15, 500)
		scores[*source] = 0 // hide the cue itself
		printTop("nominated", scores)

	case "ktruss":
		if *useDB {
			db, tg, err := openDB(g)
			if err != nil {
				return err
			}
			defer db.Close()
			truss, err := tg.KTruss(*kFlag)
			if err != nil {
				return err
			}
			fmt.Printf("%d-truss: %d directed entries (server-side)\n", *kFlag, truss.NNZ())
			reportScanPipeline(db)
			return nil
		}
		E := graphulo.Incidence(g)
		truss := graphulo.KTrussEdge(E, *kFlag)
		fmt.Printf("%d-truss keeps %d of %d edges\n", *kFlag, truss.Rows(), E.Rows())

	case "tricount":
		fmt.Printf("triangles: %v\n", graphulo.TriangleCount(adj))

	case "jaccard":
		J := graphulo.Jaccard(adj)
		fmt.Printf("nonzero Jaccard pairs: %d\n", J.NNZ()/2)
		preds := graphulo.LinkPrediction(adj, 5)
		for _, p := range preds {
			fmt.Printf("predicted link (%d,%d) score %.3f\n", p.U, p.V, p.Score)
		}

	case "nmf":
		corpus := graphulo.NewTweets(graphulo.TweetCorpusConfig{NumTweets: 2000, Seed: *seed})
		m, _, _ := corpus.A.Matrix()
		res := graphulo.NMF(m, graphulo.NMFConfig{Topics: *kFlag, MaxIter: 40, Seed: *seed})
		fmt.Printf("NMF k=%d: residual %.2f after %d iterations\n", *kFlag, res.Residual, res.Iterations)

	case "sssp":
		// Re-weight the graph and run Bellman–Ford under min.plus.
		w := weighted(g, *seed)
		dist, neg := graphulo.BellmanFord(w, *source)
		if neg {
			return fmt.Errorf("negative cycle")
		}
		reach := 0
		for _, d := range dist {
			if d < 1e308 {
				reach++
			}
		}
		fmt.Printf("shortest paths from %d reach %d vertices\n", *source, reach)

	case "communities":
		labels := graphulo.LabelPropagation(adj, 100, *seed)
		fmt.Printf("%d communities, modularity %.4f\n",
			graphulo.CommunityCount(labels), graphulo.Modularity(adj, labels))

	case "components":
		cc := graphulo.ConnectedComponents(adj)
		sizes := map[int]int{}
		for _, c := range cc {
			sizes[c]++
		}
		fmt.Printf("%d connected components\n", len(sizes))

	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	return nil
}

// reportScanPipeline prints the streaming-scan gauges after a
// cluster-backed run: how many tablet scans ran at once (per-tablet
// parallelism) and the peak entries buffered across scan pipelines (the
// streaming memory bound — wire batches, not table size).
func reportScanPipeline(db *graphulo.DB) {
	wire, rpcs, _, scanned := db.Metrics()
	st := db.ScanMetrics()
	fmt.Printf("scan pipeline: %d RPCs, %d wire bytes, %d entries scanned, max %d tablet scans in flight, peak %d entries buffered\n",
		rpcs, wire, scanned, st.MaxScansInFlight, st.MaxEntriesBuffered)
	fmt.Printf("push-down: %d tablet passes ran, %d tablets pruned by range, %d entries pruned by column band, %d partial products pre-⊕-folded\n",
		st.TabletScans, st.TabletsPrunedByRange, st.EntriesPrunedByRange, st.PartialProductsFolded)
	if *dataDir != "" {
		fmt.Printf("storage: %d block-cache hits, %d misses, %d bloom negatives (%d colq), %d locality blocks skipped, %d major compactions\n",
			st.CacheHits, st.CacheMisses, st.BloomNegatives, st.ColQBloomNegatives, st.LocalityBlocksSkipped, st.MajorCompactions)
		fmt.Printf("ingest: %d memtable freezes, %s write-stall time\n",
			st.MemtableFreezes, time.Duration(st.WriteStallNanos))
	}
}

// reportTraces prints every recorded kernel query: its span tree
// (coordinator scans and flushes, per-daemon tablet passes) and the
// per-query counter mirror with scan-pass latency quantiles.
func reportTraces(db *graphulo.DB) {
	stats := db.QueryStats()
	trees := db.FormatQueryTraces()
	for i, tree := range trees {
		fmt.Print(tree)
		if i < len(stats) {
			q := stats[i]
			fmt.Printf("  counters: %v\n", q.Counters)
			fmt.Printf("  scan pass p50 %v p99 %v over %d passes; write batch p50 %v over %d batches\n",
				q.ScanPassP50, q.ScanPassP99, q.ScanPasses, q.WriteBatchP50, q.WriteBatches)
		}
	}
}

func weighted(g graphulo.Graph, seed uint64) *graphulo.Matrix {
	var ts []graphulo.Triple
	for i, e := range g.Edges {
		w := 1 + float64((uint64(i)*seed+3)%7)
		ts = append(ts, graphulo.Triple{Row: e.U, Col: e.V, Val: w},
			graphulo.Triple{Row: e.V, Col: e.U, Val: w})
	}
	return graphulo.NewMatrix(g.N, g.N, ts, graphulo.MinPlus)
}

func printTop(name string, scores []float64) {
	type vs struct {
		v int
		s float64
	}
	rs := make([]vs, len(scores))
	for i, s := range scores {
		rs[i] = vs{i, s}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].s > rs[j].s })
	n := 5
	if n > len(rs) {
		n = len(rs)
	}
	fmt.Printf("%s top%d:", name, n)
	for _, r := range rs[:n] {
		fmt.Printf(" v%d=%.4g", r.v, r.s)
	}
	fmt.Println()
}
