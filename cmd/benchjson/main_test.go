package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphulo
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSubMatrixTableMult/fullscan         	       3	2406837423 ns/op	        32.00 tablet-passes/op	       240.0 tablets-pruned/op
BenchmarkSubMatrixTableMult/rowband          	       3	 204015255 ns/op	         4.000 tablet-passes/op	        44.00 tablets-pruned/op
some test log line
PASS
ok  	graphulo	23.505s
pkg: graphulo/internal/rfile
BenchmarkRepeatedScan-8	      20	  1234567 ns/op	  512 B/op	       3 allocs/op
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkSubMatrixTableMult/fullscan" || r.Iterations != 3 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 2406837423 || r.Metrics["tablet-passes/op"] != 32 {
		t.Fatalf("first metrics = %v", r.Metrics)
	}
	if r.Context["pkg"] != "graphulo" || r.Context["goos"] != "linux" {
		t.Fatalf("first context = %v", r.Context)
	}
	if got := results[2]; got.Context["pkg"] != "graphulo/internal/rfile" {
		t.Fatalf("pkg context did not advance: %v", got.Context)
	}
	if got := results[2].Metrics; got["B/op"] != 512 || got["allocs/op"] != 3 {
		t.Fatalf("third metrics = %v", got)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"BenchmarkBroken", // no fields
		"BenchmarkOdd 3 42",
		"Benchmark 3 x ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
