// Command benchjson converts `go test -bench` text output into
// machine-readable JSON so CI can archive benchmark results as an
// artifact and the perf trajectory can be compared across PRs without
// scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=20x . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-a.txt bench-b.txt
//	benchjson -o BENCH_NEW.json -baseline BENCH_OLD.json bench-*.txt
//
// Each `BenchmarkX <iters> <value> <unit> [<value> <unit>...]` line
// becomes one record carrying every reported metric (ns/op, B/op,
// custom b.ReportMetric units alike); goos/goarch/pkg/cpu context lines
// are captured once per input stream. Lines that are not benchmark
// results (PASS, ok, test logs) are ignored, so piping a whole `go
// test` run through is fine.
//
// With -baseline, the current results are additionally diffed against a
// previously committed JSON file: every benchmark present in both gets
// an old/new/ratio line on ns/op, and benchmarks that appeared or
// vanished are called out. The diff is report-only by default (CI
// machines are too noisy for hard gates); -tolerance N makes a >N%
// ns/op regression on any shared benchmark exit non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Context carries the goos/goarch/pkg/cpu header values in effect
	// where the line appeared.
	Context map[string]string `json:"context,omitempty"`
}

// Output is the file-level shape.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON file to diff the new results against")
	tolerance := flag.Float64("tolerance", 0, "fail if any shared benchmark regresses ns/op by more than this percent (0 = report only)")
	flag.Parse()

	var results []Result
	if args := flag.Args(); len(args) > 0 {
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			rs, err := parse(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			results = append(results, rs...)
		}
	} else {
		rs, err := parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		results = rs
	}

	enc, err := json.MarshalIndent(Output{Benchmarks: results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		old, err := loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		if !compare(os.Stdout, old, results, *tolerance) {
			os.Exit(1)
		}
	}
}

// loadBaseline reads a previously written benchjson output file.
func loadBaseline(path string) (Output, error) {
	var o Output
	data, err := os.ReadFile(path)
	if err != nil {
		return o, err
	}
	if err := json.Unmarshal(data, &o); err != nil {
		return o, fmt.Errorf("%s: %w", path, err)
	}
	return o, nil
}

// compare prints an old/new/ratio table on ns/op for benchmarks present
// in both sets and names the ones only one side has. It returns false
// when tolerance > 0 and some shared benchmark got slower by more than
// tolerance percent.
func compare(w io.Writer, old Output, results []Result, tolerance float64) bool {
	oldNs := map[string]float64{}
	for _, r := range old.Benchmarks {
		if ns, ok := r.Metrics["ns/op"]; ok {
			oldNs[r.Name] = ns
		}
	}
	fmt.Fprintf(w, "\nbaseline comparison (ns/op, new/old):\n")
	ok := true
	seen := map[string]bool{}
	for _, r := range results {
		ns, hasNs := r.Metrics["ns/op"]
		if !hasNs {
			continue
		}
		seen[r.Name] = true
		base, shared := oldNs[r.Name]
		if !shared {
			fmt.Fprintf(w, "  %-60s %12.0f  (new benchmark)\n", r.Name, ns)
			continue
		}
		ratio := ns / base
		mark := ""
		if tolerance > 0 && base > 0 && ratio > 1+tolerance/100 {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "  %-60s %12.0f -> %12.0f  (%.2fx)%s\n", r.Name, base, ns, ratio, mark)
	}
	for _, r := range old.Benchmarks {
		if _, hasNs := r.Metrics["ns/op"]; hasNs && !seen[r.Name] {
			fmt.Fprintf(w, "  %-60s (gone: present only in baseline)\n", r.Name)
		}
	}
	return ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// contextKeys are the `key: value` header lines `go test -bench`
// prints before results.
var contextKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// parse extracts benchmark result lines from one stream.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	ctx := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && contextKeys[key] {
			// A new pkg header starts a fresh context for later lines.
			if key == "pkg" {
				next := map[string]string{}
				for k, v := range ctx {
					if k != "pkg" {
						next[k] = v
					}
				}
				ctx = next
			}
			ctx[key] = strings.TrimSpace(val)
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		res.Context = map[string]string{}
		for k, v := range ctx {
			res.Context[k] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseBenchLine decodes `BenchmarkName-8  20  123 ns/op  4.5 unit/op ...`.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, and at least one value+unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
