// Command benchjson converts `go test -bench` text output into
// machine-readable JSON so CI can archive benchmark results as an
// artifact and the perf trajectory can be compared across PRs without
// scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=20x . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-a.txt bench-b.txt
//
// Each `BenchmarkX <iters> <value> <unit> [<value> <unit>...]` line
// becomes one record carrying every reported metric (ns/op, B/op,
// custom b.ReportMetric units alike); goos/goarch/pkg/cpu context lines
// are captured once per input stream. Lines that are not benchmark
// results (PASS, ok, test logs) are ignored, so piping a whole `go
// test` run through is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Context carries the goos/goarch/pkg/cpu header values in effect
	// where the line appeared.
	Context map[string]string `json:"context,omitempty"`
}

// Output is the file-level shape.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	if args := flag.Args(); len(args) > 0 {
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			rs, err := parse(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			results = append(results, rs...)
		}
	} else {
		rs, err := parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		results = rs
	}

	enc, err := json.MarshalIndent(Output{Benchmarks: results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// contextKeys are the `key: value` header lines `go test -bench`
// prints before results.
var contextKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// parse extracts benchmark result lines from one stream.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	ctx := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && contextKeys[key] {
			// A new pkg header starts a fresh context for later lines.
			if key == "pkg" {
				next := map[string]string{}
				for k, v := range ctx {
					if k != "pkg" {
						next[k] = v
					}
				}
				ctx = next
			}
			ctx[key] = strings.TrimSpace(val)
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		res.Context = map[string]string{}
		for k, v := range ctx {
			res.Context[k] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseBenchLine decodes `BenchmarkName-8  20  123 ns/op  4.5 unit/op ...`.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, and at least one value+unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
