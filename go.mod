module graphulo

go 1.22
