package graphulo

import (
	"fmt"
	"sync"
	"testing"
)

// These tests pin the streaming pipeline's concurrency story: kernel
// passes (TableMult) and plain scans share a cluster safely while each
// kernel's tablet workers run in parallel. Run them under -race (CI
// does) — they are the regression net for the per-tablet worker pool.

// splitGraphTables ingests an RMAT graph and pre-splits its adjacency
// tables into >= 4 tablets so kernel passes actually fan out.
func splitGraphTables(t *testing.T, db *DB) (a, at string, n int) {
	t.Helper()
	g := DedupGraph(RMAT(Graph500(7, 5)))
	tg, err := db.CreateGraph("G")
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Ingest(g); err != nil {
		t.Fatal(err)
	}
	a, at, _ = tg.Tables()
	ops := db.Connector().TableOperations()
	splits := []string{
		VertexName(g.N / 4), VertexName(g.N / 2), VertexName(3 * g.N / 4),
	}
	for _, tbl := range []string{a, at} {
		if err := ops.AddSplits(tbl, splits); err != nil {
			t.Fatal(err)
		}
	}
	return a, at, g.N
}

func runConcurrentKernelsAndScans(t *testing.T, cfg ClusterConfig) {
	db := mustOpen(cfg)
	defer db.Close()
	a, at, _ := splitGraphTables(t, db)

	// Baseline read of A before any concurrency.
	baseline, err := db.ReadAssoc(a)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.NNZ() == 0 {
		t.Fatal("empty adjacency table")
	}

	const mults = 2
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Kernel workers: concurrent TableMults into distinct result tables.
	for i := 0; i < mults; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := db.TableMult(at, a, fmt.Sprintf("Sq%d", i), "plus.times"); err != nil {
				errs <- fmt.Errorf("TableMult %d: %w", i, err)
			}
		}(i)
	}
	// Plain scan workers: whole-table streaming reads of A while the
	// kernels run.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				got, err := db.ReadAssoc(a)
				if err != nil {
					errs <- fmt.Errorf("scan %d pass %d: %w", i, pass, err)
					return
				}
				if got.NNZ() != baseline.NNZ() {
					errs <- fmt.Errorf("scan %d pass %d: %d entries, want %d", i, pass, got.NNZ(), baseline.NNZ())
					return
				}
			}
		}(i)
	}
	// In durable mode, flush concurrently so minc/WAL paths overlap the
	// parallel scan workers too.
	if cfg.DataDir != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				if err := db.Connector().TableOperations().Flush(a); err != nil {
					errs <- fmt.Errorf("flush pass %d: %w", pass, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The concurrent multiplies must agree entry for entry.
	first, err := db.ReadAssoc("Sq0")
	if err != nil {
		t.Fatal(err)
	}
	if first.NNZ() == 0 {
		t.Fatal("TableMult produced no entries")
	}
	for i := 1; i < mults; i++ {
		other, err := db.ReadAssoc(fmt.Sprintf("Sq%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if other.NNZ() != first.NNZ() {
			t.Fatalf("Sq%d has %d entries, Sq0 has %d", i, other.NNZ(), first.NNZ())
		}
		for _, e := range first.Entries() {
			if other.At(e.Row, e.Col) != e.Val {
				t.Fatalf("Sq%d[%s][%s] = %v, Sq0 has %v", i, e.Row, e.Col, other.At(e.Row, e.Col), e.Val)
			}
		}
	}
	// Evidence that kernel passes fanned out across tablets.
	if maxInFlight := db.ScanMetrics().MaxScansInFlight; maxInFlight < 2 {
		t.Fatalf("MaxScansInFlight = %d, want >= 2 (no per-tablet parallelism observed)", maxInFlight)
	}
}

func TestConcurrentKernelsAndScans(t *testing.T) {
	runConcurrentKernelsAndScans(t, ClusterConfig{
		TabletServers: 4, MemLimit: 512, WireBatch: 64, ScanParallelism: 4,
	})
}

func TestConcurrentKernelsAndScansDurable(t *testing.T) {
	runConcurrentKernelsAndScans(t, ClusterConfig{
		TabletServers: 4, MemLimit: 512, WireBatch: 64, ScanParallelism: 4,
		DataDir: t.TempDir(), NoSync: true,
	})
}
