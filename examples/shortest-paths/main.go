// Shortest paths through semiring swaps (Table I: Shortest Path): the
// same SpGEMM/SpMV kernels compute distances once the algebra is
// min.plus — the paper's §I point about the tropical semiring.
//
//	go run ./examples/shortest-paths
package main

import (
	"fmt"
	"math"

	"graphulo"
)

func main() {
	// A small weighted road network.
	//     (0)--4--(1)--1--(2)
	//      |       |       |
	//      2       5       3
	//      |       |       |
	//     (3)--1--(4)--2--(5)
	edges := []struct {
		u, v int
		w    float64
	}{
		{0, 1, 4}, {1, 2, 1}, {0, 3, 2}, {1, 4, 5}, {2, 5, 3},
		{3, 4, 1}, {4, 5, 2},
	}
	var ts []graphulo.Triple
	for _, e := range edges {
		ts = append(ts, graphulo.Triple{Row: e.u, Col: e.v, Val: e.w},
			graphulo.Triple{Row: e.v, Col: e.u, Val: e.w})
	}
	w := graphulo.NewMatrix(6, 6, ts, graphulo.MinPlus)

	// Single source: Bellman–Ford is just iterated min.plus SpMV.
	dist, _ := graphulo.BellmanFord(w, 0)
	fmt.Println("Bellman–Ford distances from 0:", dist)

	// Same answer from Dijkstra (the classical baseline).
	fmt.Println("Dijkstra distances from 0:   ", graphulo.Dijkstra(w, 0))

	// All pairs: the min.plus closure via ⌈log n⌉ SpGEMMs — the
	// Floyd–Warshall computation as pure GraphBLAS kernels.
	apsp := graphulo.APSP(w)
	fmt.Println("APSP (min.plus closure):")
	fmt.Print(apsp)

	// Classical Floyd–Warshall agrees.
	fw := graphulo.FloydWarshall(w)
	agree := true
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			got, stored := apsp.Get(i, j)
			if math.IsInf(fw[i][j], 1) != !stored {
				agree = false
			} else if stored && math.Abs(got-fw[i][j]) > 1e-12 {
				agree = false
			}
		}
	}
	fmt.Println("APSP == Floyd–Warshall:", agree)

	// Negative edges: Johnson reweights with Bellman–Ford potentials.
	var nts []graphulo.Triple
	nts = append(nts,
		graphulo.Triple{Row: 0, Col: 1, Val: 2},
		graphulo.Triple{Row: 1, Col: 2, Val: -1},
		graphulo.Triple{Row: 0, Col: 2, Val: 4},
		graphulo.Triple{Row: 2, Col: 3, Val: 2},
	)
	neg := graphulo.NewMatrix(4, 4, nts, graphulo.MinPlus)
	jd, ok := graphulo.Johnson(neg)
	fmt.Println("Johnson on a graph with a negative edge (ok:", ok, "):")
	fmt.Print(jd)

	// Bottleneck (widest) paths: max.min semiring, same kernels again.
	cap01 := graphulo.NewMatrix(3, 3, []graphulo.Triple{
		{Row: 0, Col: 1, Val: 10}, {Row: 1, Col: 2, Val: 4}, {Row: 0, Col: 2, Val: 3},
	}, graphulo.MaxMin)
	// One hop of max.min SpGEMM: widest 2-hop path 0→2 has capacity
	// min(10, 4) = 4 > direct 3.
	two := graphulo.SpGEMM(cap01, cap01, graphulo.MaxMin)
	fmt.Printf("widest 2-hop 0→2 capacity: %v (direct edge: 3)\n", two.At(0, 2))
}
