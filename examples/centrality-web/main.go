// Centrality analysis of a power-law web graph (Table I: Centrality):
// degree, eigenvector, Katz, PageRank, and betweenness on an RMAT graph,
// with the degree table computed server-side in the cluster.
//
//	go run ./examples/centrality-web [-scale 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"graphulo"
)

func main() {
	scale := flag.Int("scale", 9, "RMAT scale (2^scale vertices)")
	flag.Parse()

	g := graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(*scale, 7)))
	adj := graphulo.AdjacencyPat(g)
	fmt.Printf("web graph: %d vertices, %d edges (RMAT scale %d)\n",
		g.N, len(g.Edges), *scale)

	// Server-side degree table.
	db, err := graphulo.Open(graphulo.ClusterConfig{TabletServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	tg, err := db.CreateGraph("Web")
	if err != nil {
		log.Fatal(err)
	}
	if err := tg.Ingest(g); err != nil {
		log.Fatal(err)
	}
	degs, err := tg.Degrees()
	if err != nil {
		log.Fatal(err)
	}

	// In-memory iterative centralities (§III.A).
	eig := graphulo.EigenvectorCentrality(adj, 1e-10, 2000)
	katz := graphulo.KatzCentrality(adj, 0.001, 1e-12, 500)
	pr := graphulo.PageRank(adj, 0.15, 1e-12, 1000)

	fmt.Printf("eigenvector converged in %d iterations; Katz %d; PageRank %d\n",
		eig.Iterations, katz.Iterations, pr.Iterations)

	type ranked struct {
		v     int
		score float64
	}
	top := func(name string, scores []float64) {
		rs := make([]ranked, len(scores))
		for i, s := range scores {
			rs[i] = ranked{i, s}
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
		fmt.Printf("%-12s top5:", name)
		for _, r := range rs[:5] {
			fmt.Printf(" v%d(%.4g)", r.v, r.score)
		}
		fmt.Println()
	}
	degScores := make([]float64, g.N)
	for key, d := range degs {
		v, err := graphulo.ParseVertex(key)
		if err == nil {
			degScores[v] = d
		}
	}
	top("degree", degScores)
	top("eigenvector", eig.Scores)
	top("katz", katz.Scores)
	top("pagerank", pr.Scores)

	// Betweenness is O(V·E); run it on a subsample for large scales.
	if g.N <= 1024 {
		top("betweenness", graphulo.BetweennessCentrality(adj))
	}

	wire, rpcs, written, scanned := db.Metrics()
	fmt.Printf("cluster activity: %d wire bytes, %d RPCs, %d written, %d scanned\n",
		wire, rpcs, written, scanned)
}
