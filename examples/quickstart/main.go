// Quickstart: the paper's Fig. 1 graph through the GraphBLAS kernel set
// and the §III algorithms, all in memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"graphulo"
)

func main() {
	// The 5-vertex, 6-edge example graph of Fig. 1.
	g := graphulo.PaperGraph()
	adj := graphulo.AdjacencyPat(g)
	fmt.Println("Adjacency matrix A (Fig. 1 graph):")
	fmt.Println(adj)

	// Kernels: the incidence identity A = EᵀE − diag (§III.B).
	E := graphulo.Incidence(g)
	fmt.Println("Incidence matrix E:")
	fmt.Println(E)

	// Degree centrality = row Reduce.
	fmt.Println("degrees:", graphulo.DegreeCentrality(adj))

	// BFS from v5 (index 4).
	fmt.Println("BFS levels from v5:", graphulo.BFSLevels(adj, 4))

	// Triangles and the 3-truss (Algorithm 1).
	fmt.Println("triangles:", graphulo.TriangleCount(adj))
	truss := graphulo.KTrussEdge(E, 3)
	fmt.Printf("3-truss keeps %d of %d edges\n", truss.Rows(), E.Rows())

	// Jaccard coefficients (Algorithm 2) — Fig. 2's fractions.
	fmt.Println("Jaccard matrix:")
	fmt.Println(graphulo.Jaccard(adj))

	// PageRank.
	pr := graphulo.PageRank(adj, 0.15, 1e-12, 1000)
	fmt.Printf("PageRank (%d iterations): %.4f\n", pr.Iterations, pr.Scores)

	// Semiring swap: min.plus turns SpGEMM into shortest paths.
	w := graphulo.NewMatrix(3, 3, []graphulo.Triple{
		{Row: 0, Col: 1, Val: 5}, {Row: 1, Col: 2, Val: 2}, {Row: 0, Col: 2, Val: 9},
	}, graphulo.MinPlus)
	dist, _ := graphulo.BellmanFord(w, 0)
	fmt.Println("min.plus shortest paths from 0:", dist)

	// Associative arrays: union-add and correlation-multiply (§II.A).
	docs := graphulo.NewAssoc([]graphulo.AssocEntry{
		{Row: "doc1", Col: "graph", Val: 1},
		{Row: "doc1", Col: "blas", Val: 1},
		{Row: "doc2", Col: "graph", Val: 1},
	}, graphulo.PlusTimes)
	corr := graphulo.AssocMultiply(docs, docs.Transpose())
	fmt.Println("document correlation:")
	fmt.Println(corr)
}
