// Twitter topic modeling — the paper's Fig. 3 experiment: NMF with k = 5
// topics over ~20k tweets, run end to end through database tables.
//
// The original corpus is unavailable; a synthetic corpus plants the same
// five communities (Turkish, dating, Atlanta guitar competition,
// Spanish, English) and NMF must recover them.
//
//	go run ./examples/twittertopics [-tweets 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"graphulo"
)

func main() {
	nTweets := flag.Int("tweets", 20000, "number of synthetic tweets")
	topics := flag.Int("topics", 5, "number of NMF topics (paper: 5)")
	flag.Parse()

	fmt.Printf("generating %d tweets across 5 planted communities...\n", *nTweets)
	corpus := graphulo.NewTweets(graphulo.TweetCorpusConfig{NumTweets: *nTweets, Seed: 42})

	db, err := graphulo.Open(graphulo.ClusterConfig{TabletServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.WriteAssoc("Tweets", corpus.A); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d (tweet, term) entries into table Tweets\n", corpus.A.NNZ())

	res, err := db.NMFTopics("Tweets", "TweetW", "TweetH", graphulo.NMFConfig{
		Topics: *topics, MaxIter: 40, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NMF: %d iterations, residual %.1f, converged %v\n",
		res.Iterations, res.Residual, res.Converged)

	// Read H back from the database and print each topic's top terms —
	// the content of Fig. 3.
	h, err := db.ReadAssoc("TweetH")
	if err != nil {
		log.Fatal(err)
	}
	for _, topic := range h.Rows() {
		weights := h.SubRef([]string{topic}, nil)
		type tw struct {
			term string
			w    float64
		}
		var terms []tw
		for _, e := range weights.Entries() {
			terms = append(terms, tw{e.Col, e.Val})
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].w > terms[j].w })
		if len(terms) > 6 {
			terms = terms[:6]
		}
		fmt.Printf("%s:", topic)
		for _, t := range terms {
			fmt.Printf(" %s(%.1f)", t.term, t.w)
		}
		fmt.Println()
	}

	// Purity against the planted ground truth.
	assigned := graphulo.AssignTopics(res.W)
	_, docs, _ := corpus.A.Matrix()
	truth := make([]int, len(docs))
	for i, d := range docs {
		var id int
		fmt.Sscanf(d, "doc%d", &id)
		truth[i] = corpus.Topic[id]
	}
	fmt.Printf("community recovery purity: %.3f (1.0 = perfect)\n",
		graphulo.TopicPurity(assigned, truth, corpus.NumTopics))
}
