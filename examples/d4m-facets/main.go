// D4M 2.0 schema demo (§II.B.3): explode dense records into the
// four-table schema and answer facet queries with associative-array
// correlation ("multiplication of two arrays represents a correlation").
//
//	go run ./examples/d4m-facets
package main

import (
	"fmt"
	"log"

	"graphulo"
	"graphulo/internal/accumulo"
	"graphulo/internal/assoc"
	"graphulo/internal/schema"
)

func main() {
	mc := accumulo.NewMiniCluster(accumulo.Config{TabletServers: 2})
	conn := mc.Connector()
	d4m, err := schema.NewD4M(conn, "Net")
	if err != nil {
		log.Fatal(err)
	}

	// Network-flow-style records, the kind of data D4M was built for.
	records := []schema.Record{
		{ID: "f001", Fields: map[string]string{"src": "10.0.0.1", "dst": "10.0.0.9", "proto": "tcp"}},
		{ID: "f002", Fields: map[string]string{"src": "10.0.0.1", "dst": "10.0.0.7", "proto": "udp"}},
		{ID: "f003", Fields: map[string]string{"src": "10.0.0.2", "dst": "10.0.0.9", "proto": "tcp"}},
		{ID: "f004", Fields: map[string]string{"src": "10.0.0.1", "dst": "10.0.0.9", "proto": "tcp"}},
		{ID: "f005", Fields: map[string]string{"src": "10.0.0.3", "dst": "10.0.0.9", "proto": "icmp"}},
	}
	if err := d4m.Ingest(records); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records into %s/%s/%s/%s\n",
		len(records), d4m.Tedge, d4m.TedgeT, d4m.Tdeg, d4m.Traw)

	// Tdeg answers "which column values are common?" in one scan.
	degs, err := d4m.Degrees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("column degrees (Tdeg):")
	for _, col := range []string{"src|10.0.0.1", "dst|10.0.0.9", "proto|tcp"} {
		fmt.Printf("  %-14s %v\n", col, degs[col])
	}

	// Correlation: TedgeTᵀ? No — TedgeT × Tedge correlates facet values
	// by co-occurrence across records.
	tt, err := schema.ReadAssoc(conn, d4m.TedgeT)
	if err != nil {
		log.Fatal(err)
	}
	te, err := schema.ReadAssoc(conn, d4m.Tedge)
	if err != nil {
		log.Fatal(err)
	}
	corr := assoc.Multiply(tt, te)
	fmt.Printf("src|10.0.0.1 co-occurs with dst|10.0.0.9 in %v flows\n",
		corr.At("src|10.0.0.1", "dst|10.0.0.9"))
	fmt.Printf("proto|tcp co-occurs with dst|10.0.0.9 in %v flows\n",
		corr.At("proto|tcp", "dst|10.0.0.9"))

	// Raw record retrieval from Traw.
	raw, err := d4m.Raw("f003")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Traw[f003] = %s\n", raw)

	// The same correlation via the public facade (union-add, too).
	a := graphulo.NewAssoc([]graphulo.AssocEntry{{Row: "x", Col: "y", Val: 1}}, graphulo.PlusTimes)
	b := graphulo.NewAssoc([]graphulo.AssocEntry{{Row: "x", Col: "z", Val: 2}}, graphulo.PlusTimes)
	fmt.Println("assoc union-add of disjoint keys:")
	fmt.Println(graphulo.AssocAdd(a, b))
}
