// k-truss community cores in a social graph, computed server-side in
// the embedded NoSQL cluster (Table I: Subgraph Detection).
//
// A planted-clique graph models a covert community inside background
// noise; the k-truss peels the noise away and exposes the clique — the
// §III.B detection workload.
//
//	go run ./examples/ktruss-social
package main

import (
	"fmt"
	"log"
	"sort"

	"graphulo"
)

func main() {
	const (
		n      = 120
		noiseP = 0.04
		clique = 10
		k      = 6
	)
	g, planted := graphulo.PlantedClique(n, noiseP, clique, 99)
	g = graphulo.DedupGraph(g)
	fmt.Printf("social graph: %d vertices, %d edges, planted %d-clique\n",
		g.N, len(g.Edges), clique)

	db, err := graphulo.Open(graphulo.ClusterConfig{TabletServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	tg, err := db.CreateGraph("Social")
	if err != nil {
		log.Fatal(err)
	}
	if err := tg.Ingest(g); err != nil {
		log.Fatal(err)
	}

	truss, err := tg.KTruss(k)
	if err != nil {
		log.Fatal(err)
	}
	// Vertices surviving the k-truss.
	survivors := map[int]bool{}
	for _, e := range truss.Entries() {
		u, _ := graphulo.ParseVertex(e.Row)
		survivors[u] = true
	}
	var got []int
	for v := range survivors {
		got = append(got, v)
	}
	sort.Ints(got)
	sort.Ints(planted)
	fmt.Printf("%d-truss survivors: %v\n", k, got)
	fmt.Printf("planted clique:    %v\n", planted)

	hits := 0
	plantedSet := map[int]bool{}
	for _, v := range planted {
		plantedSet[v] = true
	}
	for _, v := range got {
		if plantedSet[v] {
			hits++
		}
	}
	fmt.Printf("recovered %d/%d planted members (%d extras)\n",
		hits, clique, len(got)-hits)

	// Compare with the in-memory Algorithm 1 on the incidence matrix.
	adj := graphulo.AdjacencyPat(g)
	E := graphulo.Incidence(g)
	inMem := graphulo.KTrussEdge(E, k)
	fmt.Printf("in-memory Algorithm 1 agrees: %d truss edges (table: %d directed entries)\n",
		inMem.Rows(), truss.NNZ())

	tri, err := tg.TriangleCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles (server-side TableMult): %.0f; in-memory: %.0f\n",
		tri, graphulo.TriangleCount(adj))
}
