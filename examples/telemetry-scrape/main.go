// Scraping the telemetry endpoint: run a traced kernel with the HTTP
// exporter on, then read back the Prometheus /metrics families and the
// /queries span trees the way an external scraper (or a person with
// curl) would.
//
//	go run ./examples/telemetry-scrape
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"graphulo"
)

func main() {
	// ":0" picks any free port; db.MetricsAddr() reports the bound one.
	db, err := graphulo.Open(graphulo.ClusterConfig{
		TabletServers: 4,
		MetricsAddr:   "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Something worth measuring: Aᵀ·A over an RMAT graph — the raw
	// TableMult kernel, minted as one traced query.
	g := graphulo.DedupGraph(graphulo.RMAT(graphulo.Graph500(8, 7)))
	tg, err := db.CreateGraph("G")
	if err != nil {
		log.Fatal(err)
	}
	if err := tg.Ingest(g); err != nil {
		log.Fatal(err)
	}
	a, at, _ := tg.Tables()
	n, err := db.TableMultOpts(at, a, "Gsq", graphulo.MultOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TableMult %s·%s → Gsq: %d entries written\n\n", at, a, n)

	base := "http://" + db.MetricsAddr()

	// The Prometheus text exposition. A real deployment points a scrape
	// job here; we just pick out the counter and histogram families the
	// kernel moved.
	fmt.Printf("GET %s/metrics\n", base)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, want := range []string{
			"graphulo_entries_scanned_total",
			"graphulo_entries_written_total",
			"graphulo_tablet_scans_total",
			"graphulo_partial_products_folded_total",
			"graphulo_queries_total",
			"graphulo_scan_pass_seconds_count",
			"graphulo_scan_pass_seconds_sum",
		} {
			if strings.HasPrefix(line, want+" ") {
				fmt.Println("  " + line)
			}
		}
	}
	resp.Body.Close()

	// The JSON span trees behind /queries — the same data
	// db.QueryStats() and db.FormatQueryTraces() expose in-process.
	fmt.Printf("\nGET %s/queries\n", base)
	resp, err = http.Get(base + "/queries")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d bytes of span-tree JSON; rendered:\n\n", len(body))
	for _, tree := range db.FormatQueryTraces() {
		fmt.Print(tree)
	}
}
